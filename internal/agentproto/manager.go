package agentproto

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mpr/internal/core"
	"mpr/internal/telemetry"
	"mpr/internal/telemetry/hdr"
)

// Metric names the manager registers.
const (
	// MetricAgentEvents counts agent lifecycle events, labeled "connect",
	// "disconnect", or "rejected".
	MetricAgentEvents = "mpr_agent_events_total"
	// MetricAgentsConnected gauges the currently registered agents.
	MetricAgentsConnected = "mpr_agents_connected"
	// MetricBidRTT is the RespondBid round-trip HDR histogram in
	// seconds: price broadcast to bid receipt, per agent per round.
	// Registered as an hdr.Histogram (log-bucketed, ~1 ns–100 s, ≤3.1%
	// relative error), so tail quantiles are answerable without guessing
	// bucket bounds up front.
	MetricBidRTT = "mpr_agent_bid_rtt_seconds"
	// MetricShardBidRTT is the per-shard bid RTT HDR family; each shard
	// registers "mpr_mgr_shard_bid_rtt_seconds{shard=\"<i>\"}" so a hot
	// or skewed shard is visible next to the fleet-wide histogram.
	MetricShardBidRTT = "mpr_mgr_shard_bid_rtt_seconds"
	// MetricMalformed counts protocol violations: bad hellos, unexpected
	// message types, stale-round bids, and unclearable bids.
	MetricMalformed = "mpr_agent_malformed_messages_total"
	// MetricMarkets counts finished RunMarket invocations; MetricRounds
	// the price rounds across them.
	MetricMarkets = "mpr_manager_markets_total"
	MetricRounds  = "mpr_manager_rounds_total"
	// MetricBidTimeouts counts rounds that hit the per-round timeout
	// before every agent answered.
	MetricBidTimeouts = "mpr_manager_bid_timeouts_total"
	// MetricStreamUpdates counts incremental re-clears in streaming
	// markets: one per incoming bid applied to the stream engine.
	MetricStreamUpdates = "mpr_manager_stream_updates_total"
	// MetricEvictions counts slow-agent evictions, labeled by
	// DisconnectReason ("deadline_budget", "write_stall").
	MetricEvictions = "mpr_mgr_evictions_total"
	// MetricCoalescedBids counts bids coalesced away by the one-slot
	// mailboxes: an agent that sends k bids within one round contributes
	// k−1 here and exactly one bid to the clear.
	MetricCoalescedBids = "mpr_mgr_coalesced_bids_total"
	// MetricWireAgents counts registrations by negotiated transport,
	// labeled "json" or "binary".
	MetricWireAgents = "mpr_mgr_wire_agents_total"
)

// ManagerConfig parameterizes the market manager daemon.
type ManagerConfig struct {
	// InitialPrice opens each market (q′₀). Default 0.1.
	InitialPrice float64
	// MaxRounds bounds the price iterations per market. Default 50.
	MaxRounds int
	// Tolerance is the relative price-change convergence threshold.
	// Default 1e-4.
	Tolerance float64
	// RoundTimeout bounds how long the manager waits for each round's
	// bids — the paper's safety timeout ("e.g., 30 seconds" overall).
	// It doubles as the write deadline on price/order broadcasts.
	// Default 2 s per round.
	RoundTimeout time.Duration
	// Shards is the number of connection-manager shards. Each shard runs
	// a bounded event loop that owns all writes, bid harvesting, and
	// eviction decisions for its slice of the fleet; agents are assigned
	// round-robin at registration. Clearing prices are bit-identical for
	// any shard count (bids are merged in roster order before the clear
	// — TestShardDeterminism). Default min(GOMAXPROCS, 16).
	Shards int
	// EvictAfterMisses is the slow-agent deadline-miss budget: an agent
	// that misses this many consecutive round deadlines is evicted with
	// ReasonDeadlineBudget (typed error on the wire, counted in
	// mpr_mgr_evictions_total). Default 3; negative disables eviction.
	EvictAfterMisses int
	// Logf, when set, receives protocol diagnostics. Nil is safe and
	// logs nothing — library users need not wire logging.
	Logf func(format string, args ...interface{})
	// Telemetry, when set, receives the manager's connection, latency,
	// and protocol metrics. Nil (the Nop registry) disables them.
	Telemetry *telemetry.Registry
	// Tracer, when set, receives one "market_round" event per price
	// iteration and one "market_clear" per finished market — the feed
	// behind mprd's /debug/market page.
	Tracer *telemetry.Tracer
	// Streaming switches RunMarket to the continuously-clearing engine:
	// every incoming bid is applied to a core.StreamMarket and re-clears
	// the market incrementally in O(log M), so a price is published per
	// update (one "stream_update" trace event each) instead of only per
	// round. The wire protocol is unchanged — agents still answer round
	// price broadcasts — and the round fixpoint iteration is identical;
	// only the solver underneath the round becomes incremental.
	Streaming bool
	// OnStreamUpdate, when set with Streaming, observes every incremental
	// re-clear: the bidding job, the round, and the new clearing price.
	// mprd uses it to feed the stream-price time series.
	OnStreamUpdate func(jobID string, round int, price float64, feasible bool)
}

func (c *ManagerConfig) normalize() {
	if c.InitialPrice <= 0 {
		c.InitialPrice = 0.1
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 50
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-4
	}
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = 2 * time.Second
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards > 16 {
			c.Shards = 16
		}
	}
	if c.EvictAfterMisses == 0 {
		c.EvictAfterMisses = 3
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
}

// Wire transport names, as negotiated per connection.
const (
	WireJSON   = "json"
	WireBinary = "binary"
)

// agentConn is one connected bidding agent.
type agentConn struct {
	conn  net.Conn
	codec wireCodec
	hello Message
	wire  string // WireJSON or WireBinary
	shard *shard

	// dropped flips exactly once when the connection is closed by either
	// side; it gates shard writes and double-eviction.
	dropped atomic.Bool

	// Loop-owned round state (only the owning shard's event loop touches
	// these): roster index of the in-flight market and consecutive
	// deadline misses toward the eviction budget.
	idx    int
	missed int

	// mbMu guards the inbound mailbox plus the last-accepted-bid record
	// (fed by harvests, read by snapshots and market seeding).
	mbMu    sync.Mutex
	mb      mailbox
	lastBid core.Bid
	hasLast bool
	// seed is a bid restored from an mprstate snapshot; it stands in for
	// lastBid until the first live bid is harvested.
	seed    core.Bid
	hasSeed bool
}

// seedBid returns the bid a market (or snapshot) should assume for this
// agent before it bids: the last harvested live bid, else the restored
// seed. Callers hold mbMu.
func (a *agentConn) seedBid() (core.Bid, bool) {
	if a.hasLast {
		return a.lastBid, true
	}
	if a.hasSeed {
		return a.seed, true
	}
	return core.Bid{}, false
}

// readWriter splits a connection whose read side is buffered (for the
// transport sniff) from its write side.
type readWriter struct {
	io.Reader
	io.Writer
}

// Manager is the market facilitator: it accepts agent registrations over
// TCP and clears interactive markets on demand.
type Manager struct {
	cfg      ManagerConfig
	listener net.Listener

	mu        sync.Mutex
	agents    map[string]*agentConn
	restored  map[string]AgentState // snapshot agents awaiting reconnect
	lastPrice float64
	nextShard int
	closed    bool

	shards []*shard
	stop   chan struct{}
	wg     sync.WaitGroup

	// marketMu serializes RunMarket: rounds own the shard loops.
	marketMu sync.Mutex

	// curRound is the round number bids must echo to be accepted; 0
	// outside a market.
	curRound atomic.Int64

	// marketSeq numbers RunMarket invocations; it seeds each market's
	// trace ID ("m<seq>") and the per-round IDs broadcast on the wire.
	marketSeq atomic.Uint64

	evictTotal atomic.Int64

	// Telemetry handles; all nil (no-op) without a configured registry.
	connects        *telemetry.Counter
	disconnects     *telemetry.Counter
	rejected        *telemetry.Counter
	connected       *telemetry.Gauge
	bidRTT          *hdr.Histogram
	malformed       *telemetry.Counter
	markets         *telemetry.Counter
	rounds          *telemetry.Counter
	timeouts        *telemetry.Counter
	streamUpdates   *telemetry.Counter
	coalesced       *telemetry.Counter
	evictDeadline   *telemetry.Counter
	evictWriteStall *telemetry.Counter
	wireJSON        *telemetry.Counter
	wireBinary      *telemetry.Counter
}

// logf forwards to cfg.Logf when set; safe even on an un-normalized
// config so a nil Logf can never panic a market.
func (m *Manager) logf(format string, args ...interface{}) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// NewManager starts a manager listening on addr (e.g. "127.0.0.1:0").
func NewManager(addr string, cfg ManagerConfig) (*Manager, error) {
	cfg.normalize()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("agentproto: listen: %w", err)
	}
	m := &Manager{cfg: cfg, listener: ln, agents: make(map[string]*agentConn), stop: make(chan struct{})}
	if reg := cfg.Telemetry; reg != nil {
		events := reg.CounterFamily(MetricAgentEvents, "Agent lifecycle events.", "event")
		m.connects = events.With("connect")
		m.disconnects = events.With("disconnect")
		m.rejected = events.With("rejected")
		m.connected = reg.Gauge(MetricAgentsConnected, "Currently registered agents.")
		m.bidRTT = reg.HDR(MetricBidRTT, "RespondBid round-trip latency in seconds (HDR).")
		m.malformed = reg.Counter(MetricMalformed, "Protocol violations: bad hellos, unexpected types, stale-round or unclearable bids.")
		m.markets = reg.Counter(MetricMarkets, "Finished RunMarket invocations.")
		m.rounds = reg.Counter(MetricRounds, "Price rounds across all markets.")
		m.timeouts = reg.Counter(MetricBidTimeouts, "Rounds that timed out before all bids arrived.")
		m.streamUpdates = reg.Counter(MetricStreamUpdates, "Incremental re-clears applied by streaming markets.")
		m.coalesced = reg.Counter(MetricCoalescedBids, "Bids coalesced away by one-slot per-agent mailboxes.")
		evictions := reg.CounterFamily(MetricEvictions, "Slow-agent evictions by typed reason.", "reason")
		m.evictDeadline = evictions.With(string(ReasonDeadlineBudget))
		m.evictWriteStall = evictions.With(string(ReasonWriteStall))
		wires := reg.CounterFamily(MetricWireAgents, "Agent registrations by negotiated transport.", "wire")
		m.wireJSON = wires.With(WireJSON)
		m.wireBinary = wires.With(WireBinary)
	}
	m.shards = make([]*shard, cfg.Shards)
	for i := range m.shards {
		m.shards[i] = newShard(m, i)
		if reg := cfg.Telemetry; reg != nil {
			m.shards[i].rtt = reg.HDR(MetricShardBidRTT+`{shard="`+strconv.Itoa(i)+`"}`,
				"Per-shard RespondBid round-trip latency in seconds (HDR).")
		}
		m.wg.Add(1)
		go m.shards[i].loop()
	}
	m.wg.Add(1)
	go m.acceptLoop()
	return m, nil
}

// Addr returns the listen address for agents to dial.
func (m *Manager) Addr() string { return m.listener.Addr().String() }

// AgentCount reports the number of registered agents.
func (m *Manager) AgentCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.agents)
}

// Shards reports the configured shard count.
func (m *Manager) Shards() int { return len(m.shards) }

// Evictions reports the total slow-agent evictions across all typed
// reasons — the scalar mprd samples into its eviction time series.
func (m *Manager) Evictions() int64 { return m.evictTotal.Load() }

// Close shuts the manager down and disconnects all agents.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	agents := make([]*agentConn, 0, len(m.agents))
	for _, a := range m.agents {
		agents = append(agents, a)
	}
	m.mu.Unlock()
	close(m.stop)
	err := m.listener.Close()
	for _, a := range agents {
		a.conn.Close()
	}
	m.wg.Wait()
	return err
}

func (m *Manager) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.listener.Accept()
		if err != nil {
			return // listener closed
		}
		m.wg.Add(1)
		go m.serve(conn)
	}
}

// serve sniffs the transport (a binary agent's first byte is the 'M' of
// the negotiation preamble; a JSON-lines hello starts with '{'),
// completes version negotiation when binary, validates the hello, and
// then runs the connection's read loop, feeding bids into the agent's
// mailbox. All writes after registration happen on the owning shard's
// event loop.
func (m *Manager) serve(conn net.Conn) {
	defer m.wg.Done()
	br := bufio.NewReaderSize(conn, 512)
	first, err := br.Peek(1)
	if err != nil {
		conn.Close()
		return
	}
	var codec wireCodec
	wire := WireJSON
	if first[0] == preambleMagicReq[0] {
		if _, err := negotiateServer(br, conn); err != nil {
			m.malformed.Inc()
			m.rejected.Inc()
			m.logf("binary negotiation failed: %v", err)
			conn.Close()
			return
		}
		codec = NewFrameCodec(br, conn)
		wire = WireBinary
	} else {
		codec = NewCodec(readWriter{Reader: br, Writer: conn})
	}
	hello, err := codec.Recv()
	if err != nil || hello.Type != MsgHello || hello.JobID == "" {
		m.malformed.Inc()
		m.rejected.Inc()
		_ = codec.Send(Message{Type: MsgError, Reason: "expected hello with job_id"})
		conn.Close()
		return
	}
	if hello.Cores <= 0 || hello.WattsPerCore <= 0 || hello.MaxFrac <= 0 {
		m.malformed.Inc()
		m.rejected.Inc()
		_ = codec.Send(Message{Type: MsgError, Reason: "hello needs positive cores, watts_per_core, max_frac"})
		conn.Close()
		return
	}
	a := &agentConn{conn: conn, codec: codec, hello: hello, wire: wire}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		conn.Close()
		return
	}
	if _, dup := m.agents[hello.JobID]; dup {
		m.mu.Unlock()
		m.rejected.Inc()
		_ = codec.Send(Message{Type: MsgError, Reason: "duplicate job_id"})
		conn.Close()
		return
	}
	a.shard = m.shards[m.nextShard%len(m.shards)]
	m.nextShard++
	if r, ok := m.restored[hello.JobID]; ok {
		delete(m.restored, hello.JobID)
		if r.HasBid {
			a.seed = core.Bid{Delta: r.Delta, B: r.B}
			a.hasSeed = true
		}
	}
	m.agents[hello.JobID] = a
	n := len(m.agents)
	m.mu.Unlock()
	m.connects.Inc()
	if wire == WireBinary {
		m.wireBinary.Inc()
	} else {
		m.wireJSON.Inc()
	}
	m.connected.Set(float64(n))
	m.logf("agent %s registered (%.0f cores, %s)", hello.JobID, hello.Cores, wire)

	for {
		msg, err := codec.Recv()
		if err != nil {
			break
		}
		if msg.Type == MsgBid {
			m.noteBid(a, msg)
		} else {
			// Agents only ever send hellos and bids; anything else is a
			// confused or hostile peer worth counting.
			m.malformed.Inc()
			m.logf("agent %s sent unexpected %s", hello.JobID, msg.Type)
		}
	}
	m.drop(a, ReasonPeerClosed, false)
}

// noteBid lands an inbound bid in the agent's one-slot mailbox. Bids for
// any round but the one in flight are stale and discarded; a second bid
// within the same round overwrites the first (coalesced); an unclearable
// bid (e.g. negative Δ) still answers the round — so the shard doesn't
// wait out the deadline — but is flagged invalid and the agent's previous
// bid stands.
func (m *Manager) noteBid(a *agentConn, msg Message) {
	round := int(m.curRound.Load())
	if round == 0 || msg.Round != round {
		// Bids must echo the round they answer; anything else is stale
		// (or fabricated) and is discarded.
		m.malformed.Inc()
		return
	}
	bid := core.Bid{Delta: msg.Delta, B: msg.B}
	valid := true
	if err := bid.Validate(); err != nil {
		valid = false
		m.malformed.Inc()
		m.logf("agent %s bid rejected: %v", a.hello.JobID, err)
	}
	now := time.Now().UnixNano()
	a.mbMu.Lock()
	first := !(a.mb.has && a.mb.round == round)
	a.mb = mailbox{round: round, has: true, valid: valid, bid: bid, trace: msg.TraceID, recvNS: now}
	a.mbMu.Unlock()
	if first {
		a.shard.answered.Add(1)
		select {
		case a.shard.wake <- struct{}{}:
		default:
		}
	} else {
		m.coalesced.Inc()
		// Coalescing is an anomaly worth a flight-recorder breadcrumb:
		// an agent re-bidding within one round means its first answer
		// raced the deadline. Ring emission allocates nothing.
		m.cfg.Tracer.Emit(telemetry.Event{Name: "coalesced_bid", Round: round, Label: a.hello.JobID})
	}
}

// drop closes an agent connection exactly once. Evictions (slow agents
// only — drop is otherwise bookkeeping for a peer that already left)
// send the typed reason on the wire and count it.
func (m *Manager) drop(a *agentConn, reason DisconnectReason, evict bool) {
	if !a.dropped.CompareAndSwap(false, true) {
		return
	}
	if evict {
		_ = a.conn.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
		_ = a.codec.Send(Message{Type: MsgError, Reason: EvictedPrefix + string(reason)})
		m.evictTotal.Add(1)
		switch reason {
		case ReasonDeadlineBudget:
			m.evictDeadline.Inc()
		case ReasonWriteStall:
			m.evictWriteStall.Inc()
		}
		m.logf("agent %s evicted: %s", a.hello.JobID, reason)
		// Evictions feed the shared tracer ring so a flight bundle
		// triggered by an EvictionBurst alert carries the per-agent
		// evidence (who, why) from the seconds before the dump.
		m.cfg.Tracer.Emit(telemetry.Event{Name: "eviction", Label: a.hello.JobID + ":" + string(reason)})
	}
	a.conn.Close()
	m.mu.Lock()
	if cur, ok := m.agents[a.hello.JobID]; ok && cur == a {
		delete(m.agents, a.hello.JobID)
	}
	n := len(m.agents)
	m.mu.Unlock()
	m.disconnects.Inc()
	m.connected.Set(float64(n))
	m.logf("agent %s disconnected (%s)", a.hello.JobID, reason)
}

// ServeConn registers an agent connection that was established out of
// band — typically one end of a net.Pipe from an in-process load
// generator, which costs no file descriptors and still exercises the
// full wire path (JSON or negotiated binary). The manager owns conn from
// here on and serves it exactly like an accepted TCP connection.
func (m *Manager) ServeConn(conn net.Conn) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		conn.Close()
		return fmt.Errorf("agentproto: manager closed")
	}
	m.wg.Add(1)
	m.mu.Unlock()
	go m.serve(conn)
	return nil
}

// MarketOutcome is the result of one interactive market run over the
// connected agents.
type MarketOutcome struct {
	Result *core.ClearingResult
	// Orders maps job IDs to awarded reductions (cores).
	Orders map[string]float64
	// TraceID is the market's trace identifier ("m<seq>") — the prefix of
	// the per-round IDs stamped on this market's price broadcasts.
	TraceID string
}

// mergedBid is one roster slot's harvested bid for the round in flight.
type mergedBid struct {
	has     bool
	valid   bool
	jobID   string
	bid     core.Bid
	trace   string
	recvNS  int64
	bcastNS int64
}

// RunMarket clears an interactive market for the given power-reduction
// target over the currently registered agents, sends reduction orders,
// and returns the outcome.
//
// Each round is a scatter/gather over the shards: every shard event loop
// broadcasts the price to its members, collects their bids (one-slot
// mailboxes, coalescing floods to the newest), and hands back a batch at
// the deadline or as soon as all members answered. The batches are
// merged in roster order before the clear, so the clearing price is
// bit-identical for any shard count and any bid arrival order.
func (m *Manager) RunMarket(targetW float64) (*MarketOutcome, error) {
	m.marketMu.Lock()
	defer m.marketMu.Unlock()

	m.mu.Lock()
	agents := make([]*agentConn, 0, len(m.agents))
	for _, a := range m.agents {
		agents = append(agents, a)
	}
	m.mu.Unlock()
	sort.Slice(agents, func(i, j int) bool { return agents[i].hello.JobID < agents[j].hello.JobID })
	if len(agents) == 0 {
		return nil, core.ErrNoParticipants
	}

	parts := make([]*core.Participant, len(agents))
	members := make([][]*agentConn, len(m.shards))
	for i, a := range agents {
		a.idx = i
		parts[i] = &core.Participant{
			JobID:        a.hello.JobID,
			Cores:        a.hello.Cores,
			WattsPerCore: a.hello.WattsPerCore,
			MaxFrac:      a.hello.MaxFrac,
		}
		// The paper's timeout rule, extended across markets and restarts:
		// until an agent bids this market, the clear proceeds on its last
		// known bid (zero for a fresh connection).
		a.mbMu.Lock()
		if b, ok := a.seedBid(); ok {
			parts[i].Bid = b
		}
		a.mbMu.Unlock()
		members[a.shard.id] = append(members[a.shard.id], a)
	}

	reply := make(chan shardBatch, len(m.shards))
	if !m.scatter(shardCmd{kind: cmdInstall, reply: reply}, members) {
		return nil, fmt.Errorf("agentproto: manager closed")
	}

	// Every market gets a trace ID "m<seq>"; each round extends it to
	// "m<seq>.r<round>" and stamps that on the price broadcast. Agents
	// echo it on their bids, which lets the merge below attribute a bid
	// to the exact broadcast that prompted it and record a per-agent
	// respond_bid span linked under the round.
	marketTrace := "m" + strconv.FormatUint(m.marketSeq.Add(1), 10)

	// The market runs as a span tree — market → market_round →
	// respond_bids, plus one externally-timed respond_bid{agent} child
	// per traced bid — so /debug/spans shows where wall-time went, and
	// the scatter/gather carries the "mpr_span" pprof label.
	mkSpan := m.cfg.Tracer.StartSpan("market", nil)
	mkSpan.SetAttr("trace", marketTrace)
	mkSpan.SetAttr("target_w", strconv.FormatFloat(targetW, 'g', -1, 64))
	mkSpan.SetAttr("agents", strconv.Itoa(len(agents)))
	mkSpan.SetAttr("shards", strconv.Itoa(len(m.shards)))

	// Streaming mode keeps a continuously-clearing engine over the
	// participants: each incoming bid is applied incrementally (O(log M))
	// and publishes a fresh price immediately, instead of waiting for the
	// round's batch clear. The round iteration itself is unchanged.
	var stream *core.StreamMarket
	if m.cfg.Streaming {
		var err error
		stream, err = core.NewStreamMarket(parts, targetW)
		if err != nil {
			mkSpan.End()
			return nil, err
		}
		mkSpan.SetAttr("mode", "streaming")
	}

	merged := make([]mergedBid, len(agents))
	price := m.cfg.InitialPrice
	res := &core.ClearingResult{}
	converged := false
	rounds := 0
	var marketErr error
	for round := 1; round <= m.cfg.MaxRounds; round++ {
		rounds = round
		roundTrace := marketTrace + ".r" + strconv.Itoa(round)
		// The round's price broadcast is identical for every member, so it
		// is encoded exactly once per round — in both wire formats — and
		// the shard loops write the shared bytes raw per connection.
		pre, err := encodeMsg(Message{Type: MsgPrice, Round: round, Price: price, TargetW: targetW, TraceID: roundTrace})
		if err != nil {
			mkSpan.End()
			return nil, err
		}
		roundSpan := mkSpan.StartChild("market_round")
		roundSpan.SetAttr("trace", roundTrace)
		bidSpan := roundSpan.StartChild("respond_bids")
		ok := false
		telemetry.WithPprofLabels("respond_bids", func() {
			m.curRound.Store(int64(round))
			cmd := shardCmd{
				kind:    cmdRound,
				round:   round,
				pre:     pre,
				timeout: m.cfg.RoundTimeout,
				reply:   reply,
			}
			for i := range merged {
				merged[i].has = false
			}
			ok = m.gatherRound(cmd, merged)
		})
		bidSpan.End()
		if !ok {
			roundSpan.End()
			mkSpan.End()
			return nil, fmt.Errorf("agentproto: manager closed")
		}

		// Merge in roster order: identical clearing inputs no matter how
		// bids raced across shards.
		for i := range merged {
			e := &merged[i]
			if !e.has {
				continue
			}
			m.bidRTT.Record(float64(e.recvNS-e.bcastNS) / 1e9)
			if e.trace == roundTrace {
				// The agent echoed our trace ID: link a per-agent
				// respond_bid span under this round, spanning the shard's
				// broadcast to this bid's receipt. Old-format agents never
				// echo (empty TraceID) and simply stay untraced.
				m.cfg.Tracer.RecordSpan("respond_bid", roundSpan,
					e.bcastNS, e.recvNS,
					telemetry.Attr{Key: "agent", Value: e.jobID},
					telemetry.Attr{Key: "trace", Value: roundTrace})
			}
			if !e.valid {
				// Unclearable bid (counted malformed at receipt): the
				// agent's previous bid stands.
				continue
			}
			if stream != nil {
				p, feasible, err := stream.Apply(core.ParticipantDelta{Index: i, Bid: e.bid})
				if err != nil {
					m.malformed.Inc()
					m.logf("agent %s bid rejected: %v", e.jobID, err)
					continue
				}
				parts[i].Bid = e.bid
				m.streamUpdates.Inc()
				m.cfg.Tracer.Emit(telemetry.Event{Name: "stream_update", Trace: roundTrace, Round: round,
					Price: p, TargetW: targetW, Label: e.jobID})
				if m.cfg.OnStreamUpdate != nil {
					m.cfg.OnStreamUpdate(e.jobID, round, p, feasible)
				}
				continue
			}
			parts[i].Bid = e.bid
		}

		if stream != nil {
			// The round's clear is already solved — the last Apply left the
			// price cached; materializing reductions reuses res's buffers.
			marketErr = stream.ClearInto(res)
		} else {
			res, marketErr = core.Clear(parts, targetW)
		}
		if marketErr != nil {
			roundSpan.End()
			mkSpan.End()
			m.curRound.Store(0)
			return nil, marketErr
		}
		m.rounds.Inc()
		m.cfg.Tracer.Emit(telemetry.Event{Name: "market_round", Trace: roundTrace, Round: round,
			Price: res.Price, TargetW: targetW, SuppliedW: res.SuppliedW, Value: price})
		roundSpan.End()
		if math.Abs(res.Price-price) <= m.cfg.Tolerance*math.Max(price, 1e-12) {
			converged = true
			break
		}
		price = res.Price
	}
	m.curRound.Store(0)
	res.Rounds = rounds
	res.Converged = converged
	m.markets.Inc()
	m.mu.Lock()
	m.lastPrice = res.Price
	m.mu.Unlock()
	mkSpan.SetAttr("rounds", strconv.Itoa(rounds))
	mkSpan.SetAttr("converged", strconv.FormatBool(converged))
	mkSpan.End()
	clearLabel := "converged"
	if !converged {
		clearLabel = "budget_exhausted"
	}
	m.cfg.Tracer.Emit(telemetry.Event{Name: "market_clear", Trace: marketTrace, Round: rounds,
		Price: res.Price, TargetW: targetW, SuppliedW: res.SuppliedW, Label: clearLabel})

	out := &MarketOutcome{Result: res, Orders: make(map[string]float64, len(agents)), TraceID: marketTrace}
	orders := make([][]memberMsg, len(m.shards))
	for i, a := range agents {
		red := res.Reductions[i]
		out.Orders[a.hello.JobID] = red
		orders[a.shard.id] = append(orders[a.shard.id], memberMsg{a: a, msg: Message{
			Type:           MsgOrder,
			Price:          res.Price,
			ReductionCores: red,
			PaymentRate:    res.Price * red,
		}})
	}
	m.deliver(orders, reply)
	return out, nil
}

// scatter sends one command per shard (members[i] to shard i, when set)
// and waits for all acks. False when the manager shut down mid-flight.
func (m *Manager) scatter(cmd shardCmd, members [][]*agentConn) bool {
	for i, s := range m.shards {
		c := cmd
		if members != nil {
			c.members = members[i]
		}
		if !s.dispatch(c) {
			return false
		}
	}
	for range m.shards {
		select {
		case <-cmd.reply:
		case <-m.stop:
			return false
		}
	}
	return true
}

// gatherRound runs one round across all shards and merges the harvested
// batches into merged (indexed by roster position).
func (m *Manager) gatherRound(cmd shardCmd, merged []mergedBid) bool {
	for _, s := range m.shards {
		if !s.dispatch(cmd) {
			return false
		}
	}
	for range m.shards {
		var batch shardBatch
		select {
		case batch = <-cmd.reply:
		case <-m.stop:
			return false
		}
		for _, b := range batch.bids {
			merged[b.idx] = mergedBid{
				has: true, valid: b.valid, jobID: b.jobID,
				bid: b.bid, trace: b.trace, recvNS: b.recvNS, bcastNS: batch.broadcastNS,
			}
		}
	}
	return true
}

// deliver writes per-shard message lists on their event loops.
func (m *Manager) deliver(msgs [][]memberMsg, reply chan shardBatch) {
	sent := 0
	for i, s := range m.shards {
		if len(msgs[i]) == 0 {
			continue
		}
		if !s.dispatch(shardCmd{kind: cmdDeliver, msgs: msgs[i], timeout: m.cfg.RoundTimeout, reply: reply}) {
			return
		}
		sent++
	}
	for ; sent > 0; sent-- {
		select {
		case <-reply:
		case <-m.stop:
			return
		}
	}
}

// Lift broadcasts the end of the emergency.
func (m *Manager) Lift() {
	m.mu.Lock()
	lifts := make([][]memberMsg, len(m.shards))
	for _, a := range m.agents {
		lifts[a.shard.id] = append(lifts[a.shard.id], memberMsg{a: a, msg: Message{Type: MsgLift}})
	}
	m.mu.Unlock()
	m.deliver(lifts, make(chan shardBatch, len(m.shards)))
}
