package agentproto

import (
	"bytes"
	"fmt"
	"io"
	"testing"
)

// broadcastMsgs is a representative spread of price broadcasts: the
// steady-state shape, an untraced (pre-trace wire format) message, a
// negative price excursion, and wide rounds.
var broadcastMsgs = []Message{
	{Type: MsgPrice, Round: 1, Price: 0.1, TargetW: 5000, TraceID: "m1.r1"},
	{Type: MsgPrice, Round: 17, Price: 0.03514231, TargetW: 123456.789, TraceID: "m42.r17"},
	{Type: MsgPrice, Round: 3, Price: 2.5, TargetW: 800},
	{Type: MsgPrice, Round: 1 << 20, Price: -0.25, TargetW: 1e9, TraceID: "m999.r1048576"},
	{Type: MsgLift},
}

// TestBroadcastBytesIdentical pins the broadcast fast path to the wire:
// the fleet-shared pre-encoded bytes must equal, byte for byte, what the
// per-member codec path would have written — for both transports. Any
// drift here would mean agents see different bytes depending on which
// path the manager took.
func TestBroadcastBytesIdentical(t *testing.T) {
	for i, m := range broadcastMsgs {
		pre, err := encodeMsg(m)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}

		var jsonBuf bytes.Buffer
		if err := NewCodec(struct {
			io.Reader
			io.Writer
		}{nil, &jsonBuf}).Send(m); err != nil {
			t.Fatalf("msg %d: json send: %v", i, err)
		}
		if !bytes.Equal(pre.json, jsonBuf.Bytes()) {
			t.Errorf("msg %d: shared JSON bytes differ from Codec.Send:\n shared %q\n codec  %q",
				i, pre.json, jsonBuf.Bytes())
		}
		if got := pre.bytesFor(WireJSON); !bytes.Equal(got, pre.json) {
			t.Errorf("msg %d: bytesFor(json) returned the wrong encoding", i)
		}

		var frameBuf bytes.Buffer
		if err := NewFrameCodec(bytes.NewReader(nil), &frameBuf).Send(m); err != nil {
			t.Fatalf("msg %d: frame send: %v", i, err)
		}
		if !bytes.Equal(pre.frame, frameBuf.Bytes()) {
			t.Errorf("msg %d: shared frame bytes differ from FrameCodec.Send:\n shared %x\n codec  %x",
				i, pre.frame, frameBuf.Bytes())
		}
		if got := pre.bytesFor(WireBinary); !bytes.Equal(got, pre.frame) {
			t.Errorf("msg %d: bytesFor(binary) returned the wrong encoding", i)
		}
	}
}

// TestAppendFrameOffset pins appendFrame's append contract: encoding
// into a non-empty buffer must leave the existing bytes intact and place
// the length header relative to the frame's own start.
func TestAppendFrameOffset(t *testing.T) {
	m := broadcastMsgs[0]
	solo, err := appendFrame(nil, &m)
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte("existing")
	buf, err := appendFrame(append([]byte(nil), prefix...), &m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf, prefix) {
		t.Fatalf("appendFrame clobbered the existing buffer prefix: %x", buf)
	}
	if !bytes.Equal(buf[len(prefix):], solo) {
		t.Fatalf("frame at offset differs from frame at start:\n offset %x\n start  %x", buf[len(prefix):], solo)
	}
}

// BenchmarkBroadcastEncode compares the per-member encode the broadcast
// path replaced (one codec.Send per agent) against the shared pre-encode
// (one encodeMsg per round, one raw Write per agent) at a 1024-member
// shard fleet, for both transports.
func BenchmarkBroadcastEncode(b *testing.B) {
	const fleet = 1024
	msg := broadcastMsgs[0]
	for _, wire := range []string{WireJSON, WireBinary} {
		b.Run(fmt.Sprintf("per-member/%s", wire), func(b *testing.B) {
			var codec wireCodec
			if wire == WireBinary {
				codec = NewFrameCodec(bytes.NewReader(nil), io.Discard)
			} else {
				codec = NewCodec(struct {
					io.Reader
					io.Writer
				}{nil, io.Discard})
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j := 0; j < fleet; j++ {
					if err := codec.Send(msg); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("shared/%s", wire), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pre, err := encodeMsg(msg)
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < fleet; j++ {
					if _, err := io.Discard.Write(pre.bytesFor(wire)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
