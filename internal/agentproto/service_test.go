package agentproto

import (
	"io"
	"math"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"mpr/internal/core"
	"mpr/internal/perf"
	"mpr/internal/telemetry"
)

// pipeManager builds a closed manager config suitable for deterministic
// in-process tests.
func pipeManager(t *testing.T, cfg ManagerConfig) *Manager {
	t.Helper()
	m, err := NewManager("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// dialPipe attaches one strategy-driven agent over net.Pipe.
func dialPipe(t *testing.T, m *Manager, cfg AgentConfig) *Agent {
	t.Helper()
	mgrEnd, agentEnd := net.Pipe()
	if err := m.ServeConn(mgrEnd); err != nil {
		t.Fatal(err)
	}
	a, err := DialConn(agentEnd, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

// scriptConn attaches a hand-rolled agent (no Agent loop) over net.Pipe
// with the chosen wire, sends the hello, and returns its codec.
func scriptConn(t *testing.T, m *Manager, wire string, hello Message) (net.Conn, wireCodec) {
	t.Helper()
	mgrEnd, agentEnd := net.Pipe()
	if err := m.ServeConn(mgrEnd); err != nil {
		t.Fatal(err)
	}
	var c wireCodec
	if wire == WireBinary {
		if _, err := negotiateClient(agentEnd, agentEnd); err != nil {
			t.Fatal(err)
		}
		c = NewFrameCodec(agentEnd, agentEnd)
	} else {
		c = NewCodec(agentEnd)
	}
	if err := c.Send(hello); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { agentEnd.Close() })
	return agentEnd, c
}

// fleetSpec describes one deterministic strategy-driven agent.
type fleetSpec struct {
	job   string
	app   string
	cores float64
	wire  string
}

func fleetSpecs(n int) []fleetSpec {
	apps := []string{"XSBench", "RSBench", "SimpleMOC", "CoMD"}
	specs := make([]fleetSpec, n)
	for i := range specs {
		specs[i] = fleetSpec{
			job:   "fleet-" + itoa(i),
			app:   apps[i%len(apps)],
			cores: float64(32 + 16*(i%5)),
			wire:  WireJSON,
		}
	}
	return specs
}

func dialFleet(t *testing.T, m *Manager, specs []fleetSpec) {
	t.Helper()
	for _, s := range specs {
		prof, err := perf.ProfileByName(s.app)
		if err != nil {
			t.Fatal(err)
		}
		model := perf.NewCostModel(prof, 1, perf.CostLinear)
		dialPipe(t, m, AgentConfig{
			JobID: s.job, Cores: s.cores, WattsPerCore: 125, MaxFrac: prof.MaxReduction(),
			Strategy: &core.RationalBidder{Cores: s.cores, Model: model},
			Wire:     s.wire,
		})
	}
	waitAgents(t, m, len(specs))
}

// marketTrail runs one market and returns the per-round clearing prices
// (bit patterns) from the market_round trace events plus the outcome.
func marketTrail(t *testing.T, m *Manager, tracer *telemetry.Tracer, targetW float64) ([]uint64, *MarketOutcome) {
	t.Helper()
	out, err := m.RunMarket(targetW)
	if err != nil {
		t.Fatal(err)
	}
	var trail []uint64
	for _, e := range tracer.Events() {
		if e.Name == "market_round" {
			trail = append(trail, math.Float64bits(e.Price))
		}
	}
	return trail, out
}

// TestShardDeterminism pins the clearing prices bit-identical across
// shard counts 1/4/16: sharding is an execution layout, not a market
// semantic. Every round's price and every order must match exactly.
func TestShardDeterminism(t *testing.T) {
	specs := fleetSpecs(24)
	const targetW = 30000
	type run struct {
		trail  []uint64
		orders map[string]float64
		rounds int
	}
	runs := map[int]run{}
	for _, shards := range []int{1, 4, 16} {
		tracer := telemetry.NewTracer(4096)
		m := pipeManager(t, ManagerConfig{
			RoundTimeout: 2 * time.Second,
			Shards:       shards,
			Tracer:       tracer,
		})
		if m.Shards() != shards {
			t.Fatalf("manager shards = %d, want %d", m.Shards(), shards)
		}
		dialFleet(t, m, specs)
		trail, out := marketTrail(t, m, tracer, targetW)
		if !out.Result.Converged {
			t.Fatalf("shards=%d: market did not converge", shards)
		}
		runs[shards] = run{trail: trail, orders: out.Orders, rounds: out.Result.Rounds}
		m.Close()
	}
	base := runs[1]
	if len(base.trail) == 0 {
		t.Fatal("no market_round events recorded")
	}
	for _, shards := range []int{4, 16} {
		r := runs[shards]
		if !reflect.DeepEqual(r.trail, base.trail) {
			t.Errorf("shards=%d: price trail diverges from shards=1:\n got  %v\n want %v", shards, r.trail, base.trail)
		}
		if r.rounds != base.rounds {
			t.Errorf("shards=%d: rounds = %d, want %d", shards, r.rounds, base.rounds)
		}
		for job, red := range base.orders {
			if got := r.orders[job]; math.Float64bits(got) != math.Float64bits(red) {
				t.Errorf("shards=%d: order[%s] = %v, want %v", shards, job, got, red)
			}
		}
	}
}

// mixedTrail runs one market over a fleet with the given wires plus a
// scripted JSON quitter that bids round 1 and hangs up mid-market. The
// equilibrium must not depend on the transport mix.
func mixedTrail(t *testing.T, wires []string) ([]uint64, *MarketOutcome) {
	t.Helper()
	tracer := telemetry.NewTracer(4096)
	m := pipeManager(t, ManagerConfig{
		RoundTimeout: 2 * time.Second,
		Shards:       4,
		Tracer:       tracer,
	})
	specs := fleetSpecs(len(wires))
	for i := range specs {
		specs[i].wire = wires[i]
	}
	dialFleet(t, m, specs)

	// The quitter bids round 1 with a fixed supply function, then closes
	// mid-market: rounds ≥2 proceed on its round-1 bid (the paper's
	// timeout rule), identically in every run.
	_, qc := scriptConn(t, m, WireJSON, Message{Type: MsgHello, JobID: "quitter", Cores: 64, WattsPerCore: 125, MaxFrac: 0.4})
	waitAgents(t, m, len(specs)+1)
	quitDone := make(chan error, 1)
	go func() {
		msg, err := qc.Recv()
		if err != nil {
			quitDone <- err
			return
		}
		if msg.Type != MsgPrice {
			quitDone <- io.ErrUnexpectedEOF
			return
		}
		quitDone <- qc.Send(Message{Type: MsgBid, Round: msg.Round, TraceID: msg.TraceID, Delta: 12, B: 0.35})
	}()

	out, err := m.RunMarket(30000)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-quitDone; err != nil {
		t.Fatalf("quitter: %v", err)
	}
	var trail []uint64
	for _, e := range tracer.Events() {
		if e.Name == "market_round" {
			trail = append(trail, math.Float64bits(e.Price))
		}
	}
	return trail, out
}

// TestMixedFleetEquilibrium pins transport equivalence end to end:
// JSON-fallback agents and binary agents in one market — including a
// mid-round disconnect — reach bit-identical per-round prices and orders
// vs an all-JSON fleet.
func TestMixedFleetEquilibrium(t *testing.T) {
	const n = 8
	allJSON := make([]string, n)
	mixed := make([]string, n)
	allBinary := make([]string, n)
	for i := range allJSON {
		allJSON[i] = WireJSON
		allBinary[i] = WireBinary
		if i%2 == 0 {
			mixed[i] = WireBinary
		} else {
			mixed[i] = WireJSON
		}
	}
	baseTrail, baseOut := mixedTrail(t, allJSON)
	if len(baseTrail) < 2 {
		t.Fatalf("market cleared in %d rounds; the disconnect needs ≥2", len(baseTrail))
	}
	for name, wires := range map[string][]string{"mixed": mixed, "all-binary": allBinary} {
		trail, out := mixedTrail(t, wires)
		if !reflect.DeepEqual(trail, baseTrail) {
			t.Errorf("%s fleet: price trail diverges from all-JSON:\n got  %v\n want %v", name, trail, baseTrail)
		}
		for job, red := range baseOut.Orders {
			if got := out.Orders[job]; math.Float64bits(got) != math.Float64bits(red) {
				t.Errorf("%s fleet: order[%s] = %v, want %v", name, job, got, red)
			}
		}
	}
}

// TestBinaryAgentTCP exercises negotiation over real TCP: a binary fleet
// registers (version 1), clears a market, and lands in the binary wire
// counter.
func TestBinaryAgentTCP(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := pipeManager(t, ManagerConfig{RoundTimeout: time.Second, Telemetry: reg})
	for i := 0; i < 4; i++ {
		prof, err := perf.ProfileByName("XSBench")
		if err != nil {
			t.Fatal(err)
		}
		model := perf.NewCostModel(prof, 1, perf.CostLinear)
		a, err := Dial(m.Addr(), AgentConfig{
			JobID: "tcp-bin-" + itoa(i), Cores: 64, WattsPerCore: 125, MaxFrac: prof.MaxReduction(),
			Strategy: &core.RationalBidder{Cores: 64, Model: model},
			Wire:     WireBinary,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		if v := a.WireVersion(); v != FrameVersion {
			t.Fatalf("negotiated version = %d, want %d", v, FrameVersion)
		}
	}
	waitAgents(t, m, 4)
	out, err := m.RunMarket(8000)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Result.Converged {
		t.Error("binary TCP market did not converge")
	}
	if got := m.wireBinary.Value(); got != 4 {
		t.Errorf("binary wire registrations = %d, want 4", got)
	}
	if got := m.wireJSON.Value(); got != 0 {
		t.Errorf("json wire registrations = %d, want 0", got)
	}
}

// TestEvictionDeadlineBudget: a stalled agent (registers, reads prices,
// never bids) burns its deadline-miss budget, is evicted with the typed
// reason on the wire, the market still clears, and the eviction counter
// increments.
func TestEvictionDeadlineBudget(t *testing.T) {
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(64)
	m := pipeManager(t, ManagerConfig{
		RoundTimeout:     150 * time.Millisecond,
		EvictAfterMisses: 2,
		Telemetry:        reg,
		Tracer:           tracer,
	})
	dialFleet(t, m, fleetSpecs(3))

	conn, sc := scriptConn(t, m, WireJSON, Message{Type: MsgHello, JobID: "stalled", Cores: 64, WattsPerCore: 125, MaxFrac: 0.4})
	_ = conn
	waitAgents(t, m, 4)
	// The stalled agent keeps reading (so writes to it never stall) but
	// never answers; capture the typed eviction error when it lands.
	evictErr := make(chan string, 1)
	go func() {
		for {
			msg, err := sc.Recv()
			if err != nil {
				evictErr <- ""
				return
			}
			if msg.Type == MsgError {
				evictErr <- msg.Reason
				return
			}
		}
	}()

	out, err := m.RunMarket(10000)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Result.Converged {
		t.Error("market with stalled agent did not converge")
	}
	if out.Result.Rounds < 2 {
		t.Fatalf("market cleared in %d rounds; budget test needs ≥2", out.Result.Rounds)
	}
	select {
	case reason := <-evictErr:
		if want := EvictedPrefix + string(ReasonDeadlineBudget); reason != want {
			t.Errorf("eviction reason on the wire = %q, want %q", reason, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled agent never received its eviction error")
	}
	if got := m.evictDeadline.Value(); got != 1 {
		t.Errorf("%s{reason=%q} = %d, want 1", MetricEvictions, ReasonDeadlineBudget, got)
	}
	if got := m.Evictions(); got != 1 {
		t.Errorf("Evictions() = %d, want 1", got)
	}
	// The eviction left a flight-recorder breadcrumb in the tracer ring
	// naming the agent and the typed reason.
	foundEvent := false
	for _, e := range tracer.Events() {
		if e.Name == "eviction" {
			foundEvent = true
			if want := "stalled:" + string(ReasonDeadlineBudget); e.Label != want {
				t.Errorf("eviction event label = %q, want %q", e.Label, want)
			}
		}
	}
	if !foundEvent {
		t.Error("no eviction event reached the tracer ring")
	}
	deadline := time.Now().Add(2 * time.Second)
	for m.AgentCount() != 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := m.AgentCount(); got != 3 {
		t.Errorf("agents after eviction = %d, want 3", got)
	}
}

// TestWriteStallEviction: an agent that stops draining its socket trips
// the write deadline on the price broadcast and is evicted with
// reason=write_stall; the round still clears for the healthy fleet.
func TestWriteStallEviction(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := pipeManager(t, ManagerConfig{
		RoundTimeout: 150 * time.Millisecond,
		Telemetry:    reg,
	})
	dialFleet(t, m, fleetSpecs(3))
	// Register, then never read again: the next broadcast to this pipe
	// blocks until the shard's write deadline.
	scriptConn(t, m, WireJSON, Message{Type: MsgHello, JobID: "deaf", Cores: 64, WattsPerCore: 125, MaxFrac: 0.4})
	waitAgents(t, m, 4)

	out, err := m.RunMarket(10000)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Result.Converged {
		t.Error("market with write-stalled agent did not converge")
	}
	if got := m.evictWriteStall.Value(); got != 1 {
		t.Errorf("%s{reason=%q} = %d, want 1", MetricEvictions, ReasonWriteStall, got)
	}
}

// TestBackpressureCoalescing: an agent that floods k bids within one
// round contributes exactly one bid to the clear — the newest — and k−1
// to the coalesced counter. The one-slot mailbox is the bounded queue:
// flooding cannot grow manager memory or stall the round.
func TestBackpressureCoalescing(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := pipeManager(t, ManagerConfig{
		RoundTimeout: 2 * time.Second,
		MaxRounds:    1,
		Telemetry:    reg,
	})
	_, fc := scriptConn(t, m, WireBinary, Message{Type: MsgHello, JobID: "flooder", Cores: 64, WattsPerCore: 125, MaxFrac: 0.5})
	_, slowc := scriptConn(t, m, WireJSON, Message{Type: MsgHello, JobID: "slowpoke", Cores: 64, WattsPerCore: 125, MaxFrac: 0.5})
	waitAgents(t, m, 2)

	const floods = 6
	go func() {
		msg, err := fc.Recv()
		if err != nil || msg.Type != MsgPrice {
			return
		}
		for i := 1; i <= floods; i++ {
			// Last flood wins: delta climbs so the harvested bid is 6.
			if fc.Send(Message{Type: MsgBid, Round: msg.Round, TraceID: msg.TraceID, Delta: float64(i), B: 0.25}) != nil {
				return
			}
		}
		fc.Recv() // drain the order
	}()
	go func() {
		msg, err := slowc.Recv()
		if err != nil || msg.Type != MsgPrice {
			return
		}
		// Bid late enough that the flooder's burst is fully coalesced
		// before the round harvests.
		time.Sleep(300 * time.Millisecond)
		slowc.Send(Message{Type: MsgBid, Round: msg.Round, TraceID: msg.TraceID, Delta: 2, B: 0.25})
		slowc.Recv()
	}()

	if _, err := m.RunMarket(5000); err != nil {
		t.Fatal(err)
	}
	if got := m.coalesced.Value(); got != floods-1 {
		t.Errorf("%s = %d, want %d", MetricCoalescedBids, got, floods-1)
	}
	st := m.SnapshotState(0)
	var flooder *AgentState
	for i := range st.Agents {
		if st.Agents[i].JobID == "flooder" {
			flooder = &st.Agents[i]
		}
	}
	if flooder == nil || !flooder.HasBid {
		t.Fatalf("flooder missing from snapshot: %+v", st.Agents)
	}
	if flooder.Delta != floods {
		t.Errorf("harvested flooder bid delta = %v, want %v (the newest)", flooder.Delta, float64(floods))
	}
}

// TestSnapshotRestore is the crash test: run a market, snapshot, kill
// the manager, restore into a fresh one, reconnect the fleet silently,
// and verify the next clear resumes at the identical price (bit for
// bit) from the restored bids — plus the strict file round trip.
func TestSnapshotRestore(t *testing.T) {
	specs := fleetSpecs(4)
	m := pipeManager(t, ManagerConfig{RoundTimeout: 2 * time.Second})
	dialFleet(t, m, specs)
	const targetW = 9000
	out, err := m.RunMarket(targetW)
	if err != nil {
		t.Fatal(err)
	}
	p1 := out.Result.Price

	st := m.SnapshotState(123456789)
	if st.Schema != StateSchema {
		t.Fatalf("snapshot schema = %q, want %q", st.Schema, StateSchema)
	}
	if st.MarketSeq != 1 {
		t.Errorf("snapshot market_seq = %d, want 1", st.MarketSeq)
	}
	if math.Float64bits(st.LastPrice) != math.Float64bits(p1) {
		t.Errorf("snapshot last_price = %v, want %v", st.LastPrice, p1)
	}
	if len(st.Agents) != len(specs) {
		t.Fatalf("snapshot agents = %d, want %d", len(st.Agents), len(specs))
	}
	for i := range st.Agents {
		if !st.Agents[i].HasBid {
			t.Errorf("snapshot agent %s has no bid", st.Agents[i].JobID)
		}
		if i > 0 && st.Agents[i-1].JobID >= st.Agents[i].JobID {
			t.Errorf("snapshot roster not sorted at %d", i)
		}
	}

	// File round trip (atomic write, strict read).
	path := filepath.Join(t.TempDir(), "mprd.state")
	if err := WriteStateFile(path, st); err != nil {
		t.Fatal(err)
	}
	st2, err := ReadStateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, st2) {
		t.Fatalf("state file round trip diverged:\n got  %+v\n want %+v", st2, st)
	}

	// Kill the manager mid-flight and restore into a fresh one.
	m.Close()
	m2 := pipeManager(t, ManagerConfig{
		RoundTimeout:     100 * time.Millisecond,
		MaxRounds:        1,
		EvictAfterMisses: -1,
	})
	if err := m2.RestoreState(st2); err != nil {
		t.Fatal(err)
	}
	if got := m2.RestoredPending(); got != len(specs) {
		t.Fatalf("restored pending = %d, want %d", got, len(specs))
	}
	if got := m2.LastPrice(); math.Float64bits(got) != math.Float64bits(p1) {
		t.Errorf("restored last price = %v, want %v", got, p1)
	}
	// The fleet reconnects but stays silent: the first post-restore round
	// must clear on the restored bids alone.
	for _, s := range specs {
		_, c := scriptConn(t, m2, WireJSON, Message{Type: MsgHello, JobID: s.job, Cores: s.cores, WattsPerCore: 125, MaxFrac: 0.9})
		go func(c wireCodec) {
			for {
				if _, err := c.Recv(); err != nil {
					return
				}
			}
		}(c)
	}
	waitAgents(t, m2, len(specs))
	if got := m2.RestoredPending(); got != 0 {
		t.Errorf("restored pending after reconnect = %d, want 0", got)
	}
	out2, err := m2.RunMarket(targetW)
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Float64bits(out2.Result.Price); got != math.Float64bits(p1) {
		t.Errorf("post-restore clearing price = %v, want %v (bit-identical resume)", out2.Result.Price, p1)
	}
	if out2.TraceID != "m2" {
		t.Errorf("post-restore trace = %q, want m2 (market_seq resumed)", out2.TraceID)
	}
}

// TestStateValidation covers the strict reader: schema drift, duplicate
// jobs, bad specs, and unknown fields all fail loudly.
func TestStateValidation(t *testing.T) {
	good := &State{Schema: StateSchema, Agents: []AgentState{
		{JobID: "a", Cores: 4, WattsPerCore: 100, MaxFrac: 0.4, HasBid: true, Delta: 1, B: 0.2},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good state: %v", err)
	}
	bads := []*State{
		{Schema: "mprstate/v0", Agents: good.Agents},
		{Schema: StateSchema, Agents: []AgentState{{JobID: "", Cores: 4, WattsPerCore: 1, MaxFrac: 0.4}}},
		{Schema: StateSchema, Agents: []AgentState{{JobID: "a", Cores: -4, WattsPerCore: 1, MaxFrac: 0.4}}},
		{Schema: StateSchema, Agents: []AgentState{
			{JobID: "a", Cores: 4, WattsPerCore: 1, MaxFrac: 0.4},
			{JobID: "a", Cores: 4, WattsPerCore: 1, MaxFrac: 0.4},
		}},
		{Schema: StateSchema, Agents: []AgentState{{JobID: "a", Cores: 4, WattsPerCore: 1, MaxFrac: 0.4, HasBid: true, Delta: -1}}},
	}
	for i, st := range bads {
		if err := st.Validate(); err == nil {
			t.Errorf("bad state %d validated", i)
		}
	}
	// Unknown fields are schema drift, not forward compatibility.
	path := filepath.Join(t.TempDir(), "drift.state")
	if err := os.WriteFile(path, []byte(`{"schema":"mprstate/v1","saved_unix_ns":1,"market_seq":0,"agents":[],"surprise":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStateFile(path); err == nil || !strings.Contains(err.Error(), "surprise") {
		t.Errorf("unknown field accepted: %v", err)
	}
}
