package agentproto

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// oldMessage is the pre-trace wire envelope, field for field — the shape
// every agent binary built before the trace field understood. The fuzz
// target below holds the two decoders against each other to prove the
// trace field is invisible to old-format traffic.
type oldMessage struct {
	Type MsgType `json:"type"`

	JobID        string  `json:"job_id,omitempty"`
	Cores        float64 `json:"cores,omitempty"`
	WattsPerCore float64 `json:"watts_per_core,omitempty"`
	MaxFrac      float64 `json:"max_frac,omitempty"`

	Round   int     `json:"round,omitempty"`
	Price   float64 `json:"price,omitempty"`
	TargetW float64 `json:"target_w,omitempty"`

	Delta float64 `json:"delta,omitempty"`
	B     float64 `json:"b,omitempty"`

	ReductionCores float64 `json:"reduction_cores,omitempty"`
	PaymentRate    float64 `json:"payment_rate,omitempty"`

	Reason string `json:"reason,omitempty"`
}

// fieldsEqual compares the fields the two envelope generations share.
func fieldsEqual(m Message, o oldMessage) bool {
	return m.Type == o.Type &&
		m.JobID == o.JobID && m.Cores == o.Cores &&
		m.WattsPerCore == o.WattsPerCore && m.MaxFrac == o.MaxFrac &&
		m.Round == o.Round && m.Price == o.Price && m.TargetW == o.TargetW &&
		m.Delta == o.Delta && m.B == o.B &&
		m.ReductionCores == o.ReductionCores && m.PaymentRate == o.PaymentRate &&
		m.Reason == o.Reason
}

// FuzzCodecTraceCompat feeds arbitrary wire lines (old format, traced,
// and garbage) through both envelope generations and asserts the
// compatibility contract:
//
//   - any line WITHOUT a "trace" key decodes identically under the old
//     and new envelopes (same accept/reject verdict, same field values,
//     TraceID empty), and the new envelope re-encodes it byte-identically
//     to the old one — old agents and managers cannot tell the
//     difference;
//   - any line WITH a string "trace" key decodes with TraceID set, and
//     stripping the trace recovers the old encoding;
//   - nothing panics, whatever the bytes.
func FuzzCodecTraceCompat(f *testing.F) {
	seeds := []string{
		`{"type":"bid","round":3,"delta":1.5,"b":0.25}`,
		`{"type":"price","round":1,"price":0.1,"target_w":400}`,
		`{"type":"bid","round":3,"trace":"m1.r3","delta":1.5,"b":0.25}`,
		`{"type":"price","round":2,"price":0.5,"target_w":400,"trace":"m7.r2"}`,
		`{"type":"hello","job_id":"j1","cores":64,"watts_per_core":125,"max_frac":0.4}`,
		`{"type":"order","price":0.3,"reduction_cores":12,"payment_rate":3.6}`,
		"{\"type\":\"bid\",\"round\":1,\"trace\":\"\\u0000garbage\",\"delta\":-1}",
		`{"type":"bid","trace":12345}`,
		`{"trace":"orphan"}`,
		`not-json at all`,
		`{}`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		var m Message
		errNew := json.Unmarshal(line, &m)

		// Classify the input: valid JSON object, and does it carry a
		// "trace" key (of any type)?
		var raw map[string]json.RawMessage
		if json.Unmarshal(line, &raw) != nil {
			// Not a JSON object: both decoders must agree it is garbage.
			var o oldMessage
			if errOld := json.Unmarshal(line, &o); (errNew == nil) != (errOld == nil) {
				t.Fatalf("decoder verdicts diverge on non-object %q: new=%v old=%v", line, errNew, errOld)
			}
			return
		}
		// encoding/json matches keys case-insensitively (exact match wins),
		// so any case variant of "trace" feeds TraceID and disqualifies the
		// line as old-format traffic. Prefer the exact key when both exist.
		var traceRaw json.RawMessage
		hasTrace := false
		traceKeys := 0
		for k, v := range raw {
			if strings.EqualFold(k, "trace") {
				traceKeys++
				if !hasTrace || k == "trace" {
					traceRaw, hasTrace = v, true
				}
			}
		}

		var o oldMessage
		errOld := json.Unmarshal(line, &o)

		if !hasTrace {
			// Old-format input. The contract: bit-identical behavior.
			if (errNew == nil) != (errOld == nil) {
				t.Fatalf("decoder verdicts diverge on old-format %q: new=%v old=%v", line, errNew, errOld)
			}
			if errNew != nil {
				return
			}
			if m.TraceID != "" {
				t.Fatalf("old-format %q decoded with TraceID %q", line, m.TraceID)
			}
			if !fieldsEqual(m, o) {
				t.Fatalf("old-format %q: field mismatch\n new %+v\n old %+v", line, m, o)
			}
			newBytes, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			oldBytes, err := json.Marshal(o)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(newBytes, oldBytes) {
				t.Fatalf("re-encode diverges on old-format input:\n new %s\n old %s", newBytes, oldBytes)
			}
			return
		}

		// Traced input. A non-string trace must be rejected by the new
		// decoder (and is not old-format traffic, so no equivalence is
		// owed); a string trace must land in TraceID verbatim.
		var traceStr string
		if json.Unmarshal(traceRaw, &traceStr) != nil {
			if errNew == nil {
				t.Fatalf("non-string trace %s accepted in %q", traceRaw, line)
			}
			return
		}
		if errNew != nil {
			// Some other field is malformed; nothing more to check.
			return
		}
		// With several case variants of the key, which occurrence wins
		// depends on input order the map cannot recover — only assert
		// verbatim capture for the unambiguous single-key case.
		if traceKeys == 1 && m.TraceID != traceStr {
			t.Fatalf("trace %q decoded as %q", traceStr, m.TraceID)
		}
		if errOld == nil && !fieldsEqual(m, o) {
			t.Fatalf("traced %q: shared fields diverge\n new %+v\n old %+v", line, m, o)
		}
		// Stripping the trace recovers the old-format encoding exactly.
		stripped := m
		stripped.TraceID = ""
		newBytes, err := json.Marshal(stripped)
		if err != nil {
			t.Fatal(err)
		}
		oldBytes, err := json.Marshal(o)
		if err != nil {
			t.Fatal(err)
		}
		if errOld == nil && !bytes.Equal(newBytes, oldBytes) {
			t.Fatalf("trace-stripped re-encode diverges:\n new %s\n old %s", newBytes, oldBytes)
		}
	})
}
