package agentproto

import (
	"errors"
	"net"
	"sync/atomic"
	"time"

	"mpr/internal/core"
	"mpr/internal/telemetry/hdr"
)

// DisconnectReason is the typed reason the manager closes an agent
// connection. Evictions send the reason to the agent as an error message
// ("evicted: <reason>") and count it in mpr_mgr_evictions_total{reason}.
type DisconnectReason string

const (
	// ReasonDeadlineBudget: the agent missed EvictAfterMisses consecutive
	// round deadlines — a stalled or glacial bidder holding rounds at the
	// timeout floor.
	ReasonDeadlineBudget DisconnectReason = "deadline_budget"
	// ReasonWriteStall: a broadcast write to the agent missed its
	// deadline — the peer stopped draining its socket, so every further
	// send would block the shard's event loop.
	ReasonWriteStall DisconnectReason = "write_stall"
	// ReasonPeerClosed: the agent hung up (or its stream errored); not an
	// eviction.
	ReasonPeerClosed DisconnectReason = "peer_closed"
)

// EvictedPrefix prefixes the Reason of the MsgError an evicted agent
// receives; the suffix is the DisconnectReason.
const EvictedPrefix = "evicted: "

// mailbox is one agent's bounded inbound bid queue: a single slot holding
// the latest bid for the round in flight. Agents that flood bids within a
// round coalesce to the newest (counted in mpr_mgr_coalesced_bids_total);
// readers therefore never block on the market, which is the backpressure
// story — there is no unbounded queue anywhere between a socket and the
// clearing engine.
type mailbox struct {
	round  int
	has    bool
	valid  bool // bid passed core.Bid validation (invalid still answers the round)
	bid    core.Bid
	trace  string
	recvNS int64
}

// shardBid is one harvested bid handed from a shard to RunMarket.
type shardBid struct {
	idx    int // roster index for this market
	jobID  string
	valid  bool
	bid    core.Bid
	trace  string
	recvNS int64
}

// shardBatch is a shard's answer to one round (or an empty ack for
// install/deliver commands).
type shardBatch struct {
	bids        []shardBid
	broadcastNS int64 // when this shard finished its price broadcast
}

type shardCmdKind int

const (
	cmdInstall shardCmdKind = iota // adopt cmd.members as the market roster
	cmdRound                       // broadcast price, collect bids until deadline
	cmdDeliver                     // write prepared messages (orders, lifts)
)

type shardCmd struct {
	kind    shardCmdKind
	members []*agentConn
	round   int
	pre     *encodedMsg // price broadcast for cmdRound, encoded once per fleet
	timeout time.Duration
	msgs    []memberMsg // cmdDeliver payload
	reply   chan shardBatch
}

type memberMsg struct {
	a   *agentConn
	msg Message
}

// shard is one connection manager: a bounded event loop that owns all
// writes to its slice of the fleet. Readers stay one goroutine per
// connection (they block in kernel reads), but everything they produce
// lands in one-slot mailboxes, and all protocol writes, bid harvesting,
// and eviction decisions happen on the loop — single-writer, no
// per-connection write locks, no unbounded fan-out.
type shard struct {
	m  *Manager
	id int

	cmds chan shardCmd
	// wake is a one-token doorbell: readers ring it after the first bid
	// fill of a round; the loop re-checks the answered count per ring.
	wake     chan struct{}
	answered atomic.Int32

	members []*agentConn // market roster slice; loop-owned
	batch   []shardBid   // reusable harvest buffer; handed out per round

	rtt *hdr.Histogram // per-shard bid RTT (mpr_mgr_shard_bid_rtt_seconds{shard="i"})
}

func newShard(m *Manager, id int) *shard {
	return &shard{m: m, id: id, cmds: make(chan shardCmd, 4), wake: make(chan struct{}, 1)}
}

// dispatch enqueues a command unless the manager is shutting down.
func (s *shard) dispatch(cmd shardCmd) bool {
	select {
	case s.cmds <- cmd:
		return true
	case <-s.m.stop:
		return false
	}
}

func (s *shard) loop() {
	defer s.m.wg.Done()
	for {
		select {
		case <-s.m.stop:
			return
		case cmd := <-s.cmds:
			switch cmd.kind {
			case cmdInstall:
				s.members = cmd.members
				// Clear leftover mailboxes so a bid stranded after a prior
				// market's harvest can never alias a same-numbered round.
				for _, a := range s.members {
					a.mbMu.Lock()
					a.mb.has = false
					a.mbMu.Unlock()
					a.missed = 0
				}
				cmd.reply <- shardBatch{}
			case cmdRound:
				s.runRound(cmd)
			case cmdDeliver:
				for _, mm := range cmd.msgs {
					s.sendTo(mm.a, mm.msg, cmd.timeout)
				}
				cmd.reply <- shardBatch{}
			}
		}
	}
}

// sendTo writes one message on the loop with a per-send deadline (a
// shared absolute deadline would let one stalled peer poison every
// member after it in the loop), classifying failures: a write timeout
// means the peer stopped draining and is evicted (write_stall); any
// other error is a dead peer.
func (s *shard) sendTo(a *agentConn, msg Message, timeout time.Duration) bool {
	if a.dropped.Load() {
		return false
	}
	_ = a.conn.SetWriteDeadline(time.Now().Add(timeout))
	err := a.codec.Send(msg)
	if err == nil {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		s.m.logf("agent %s write stalled: %v", a.hello.JobID, err)
		s.m.drop(a, ReasonWriteStall, true)
	} else {
		s.m.logf("send to %s failed: %v", a.hello.JobID, err)
		s.m.drop(a, ReasonPeerClosed, false)
	}
	return false
}

// sendPre writes a fleet-shared pre-encoded broadcast to one member: the
// bytes for the connection's negotiated transport, raw, skipping the
// per-member re-encode. Deadline handling and failure classification
// (write_stall eviction vs dead peer) mirror sendTo exactly.
func (s *shard) sendPre(a *agentConn, pre *encodedMsg, timeout time.Duration) bool {
	if a.dropped.Load() {
		return false
	}
	_ = a.conn.SetWriteDeadline(time.Now().Add(timeout))
	_, err := a.conn.Write(pre.bytesFor(a.wire))
	if err == nil {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		s.m.logf("agent %s write stalled: %v", a.hello.JobID, err)
		s.m.drop(a, ReasonWriteStall, true)
	} else {
		s.m.logf("send to %s failed: %v", a.hello.JobID, err)
		s.m.drop(a, ReasonPeerClosed, false)
	}
	return false
}

// runRound broadcasts the round's price to the shard's members, waits
// until every live member has answered (or the round deadline), then
// harvests the mailboxes into a batch for RunMarket. Deadline-missing
// members burn one unit of their miss budget and are evicted when it
// runs out.
func (s *shard) runRound(cmd shardCmd) {
	s.answered.Store(0)
	select { // drain a stale doorbell token from a late prior-round bid
	case <-s.wake:
	default:
	}
	live := int32(0)
	for _, a := range s.members {
		if s.sendPre(a, cmd.pre, cmd.timeout) {
			live++
		}
	}
	broadcastNS := time.Now().UnixNano()
	// The collect timeout starts when the broadcast ends, mirroring the
	// old collector, so huge shards aren't charged their own send time.
	timer := time.NewTimer(cmd.timeout)
wait:
	for s.answered.Load() < live {
		select {
		case <-s.wake:
		case <-timer.C:
			break wait
		case <-s.m.stop:
			break wait
		}
	}
	timer.Stop()

	batch := s.batch[:0]
	for _, a := range s.members {
		a.mbMu.Lock()
		mb := a.mb
		got := mb.has && mb.round == cmd.round
		if got {
			a.mb.has = false
			if mb.valid {
				a.lastBid, a.hasLast = mb.bid, true
			}
		}
		a.mbMu.Unlock()
		if !got {
			// One timeout per unanswered member per round — including
			// already-dropped ones, matching the old per-connection
			// collector's accounting.
			s.m.timeouts.Inc()
			s.m.logf("round %d: timeout waiting for %s", cmd.round, a.hello.JobID)
			if a.dropped.Load() {
				continue
			}
			a.missed++
			if budget := s.m.cfg.EvictAfterMisses; budget > 0 && a.missed >= budget {
				s.m.drop(a, ReasonDeadlineBudget, true)
			}
			continue
		}
		a.missed = 0
		s.rtt.Record(float64(mb.recvNS-broadcastNS) / 1e9)
		batch = append(batch, shardBid{
			idx: a.idx, jobID: a.hello.JobID, valid: mb.valid,
			bid: mb.bid, trace: mb.trace, recvNS: mb.recvNS,
		})
	}
	s.batch = batch // keep the grown buffer for the next round
	cmd.reply <- shardBatch{bids: batch, broadcastNS: broadcastNS}
}
