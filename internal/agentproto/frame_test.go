package agentproto

import (
	"bytes"
	"encoding/hex"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// frameMessages is a representative message per type, fields as the
// protocol actually uses them.
func frameMessages() []Message {
	return []Message{
		{Type: MsgHello, JobID: "job-42", Cores: 64, WattsPerCore: 5.5, MaxFrac: 0.4},
		{Type: MsgPrice, Round: 3, Price: 0.125, TargetW: 4000, TraceID: "m7.r3"},
		{Type: MsgBid, Round: 3, TraceID: "m7.r3", Delta: 1.5, B: 0.25},
		{Type: MsgOrder, Price: 0.125, ReductionCores: 12.5, PaymentRate: 1.5625},
		{Type: MsgLift},
		{Type: MsgError, Reason: "duplicate job_id"},
	}
}

func TestFrameCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewFrameCodec(&buf, &buf)
	msgs := frameMessages()
	// Off-type field combinations must survive too — the codec is
	// generic over the envelope, not per-type schemas.
	msgs = append(msgs,
		Message{Type: MsgBid, JobID: "weird", Round: -9, Delta: -0.0, B: 1e-300, Reason: "r"},
		Message{Type: MsgPrice, Price: 0.1, TraceID: strings.Repeat("t", 300)},
	)
	for _, want := range msgs {
		if err := enc.Send(want); err != nil {
			t.Fatalf("Send(%v): %v", want, err)
		}
	}
	for i, want := range msgs {
		got, err := enc.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		// -0.0 is omitted on the wire (non-zero test) exactly like JSON's
		// omitempty, so it round-trips to +0.
		if want.Delta == 0 {
			want.Delta = 0
		}
		if got != want {
			t.Fatalf("message %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := enc.Recv(); err != io.EOF {
		t.Fatalf("Recv at end: %v, want io.EOF", err)
	}
}

// TestFramePinned pins the exact wire bytes of a bid frame — the binary
// twin of TestWireFormatPinned's JSON goldens. A byte of drift here is a
// protocol break for deployed binary agents.
func TestFramePinned(t *testing.T) {
	var buf bytes.Buffer
	c := NewFrameCodec(&buf, &buf)
	if err := c.Send(Message{Type: MsgBid, Round: 3, Delta: 1.5, B: 0.25}); err != nil {
		t.Fatal(err)
	}
	want := "" +
		"a703" + // magic, type=bid
		"00000016" + // payload length 22
		"0310" + // bitmap: round|delta|b
		"00000003" + // round 3
		"3ff8000000000000" + // delta 1.5
		"3fd0000000000000" // b 0.25
	if got := hex.EncodeToString(buf.Bytes()); got != want {
		t.Fatalf("bid frame bytes:\n got %s\nwant %s", got, want)
	}
}

func TestNegotiationVersions(t *testing.T) {
	// A future agent offering a higher version gets ours back.
	reply := &bytes.Buffer{}
	v, err := negotiateServer(bytes.NewReader([]byte("MPRB\x7f")), reply)
	if err != nil || v != FrameVersion {
		t.Fatalf("higher offer: v=%d err=%v", v, err)
	}
	if got := reply.Bytes()[4]; got != FrameVersion {
		t.Fatalf("ack version %d, want %d", got, FrameVersion)
	}
	// Version 0 is unsupportable: server acks 0 and errors; a client
	// reading that ack errors too.
	reply.Reset()
	if _, err := negotiateServer(bytes.NewReader([]byte("MPRB\x00")), reply); err == nil {
		t.Fatal("version-0 offer: want error")
	}
	if _, err := negotiateClient(bytes.NewReader(reply.Bytes()), io.Discard); err == nil {
		t.Fatal("version-0 ack: want client error")
	}
	// Garbage magic.
	if _, err := negotiateServer(bytes.NewReader([]byte("HTTP/")), io.Discard); err == nil {
		t.Fatal("bad magic: want error")
	}
	if _, err := negotiateClient(bytes.NewReader([]byte("NOPE\x01")), io.Discard); err == nil {
		t.Fatal("bad ack magic: want error")
	}
}

func TestFrameCodecMalformed(t *testing.T) {
	cases := map[string]string{
		"bad magic":       "ff0300000000",
		"bad type":        "a7ff00000000",
		"oversize":        "a703ffffffff",
		"unknown bits":    "a703000000028000",         // bit 15 set
		"truncated field": "a70300000006031000000003", // bitmap wants delta+b, payload ends
		"trailing bytes":  "a7030000000400000000",     // empty bitmap, 2 extra bytes
	}
	for name, h := range cases {
		raw, err := hex.DecodeString(h)
		if err != nil {
			t.Fatalf("%s: bad hex: %v", name, err)
		}
		c := NewFrameCodec(bytes.NewReader(raw), io.Discard)
		if _, err := c.Recv(); err == nil {
			t.Errorf("%s: Recv succeeded, want error", name)
		}
	}
	// A short header is an unexpected EOF, not a silent success.
	c := NewFrameCodec(bytes.NewReader([]byte{frameMagic, frameBid}), io.Discard)
	if _, err := c.Recv(); err == nil {
		t.Fatal("short header: want error")
	}
}

// TestFrameCodecZeroAlloc gates the steady-state price/bid hot path at
// zero allocations per message in both directions — the point of binary
// framing at C1M scale. The first Recv of a new trace string may
// allocate (intern-cache fill); steady rounds reuse it.
func TestFrameCodecZeroAlloc(t *testing.T) {
	var buf bytes.Buffer
	c := NewFrameCodec(&buf, &buf)
	price := Message{Type: MsgPrice, Round: 7, Price: 0.125, TargetW: 4000, TraceID: "m3.r7"}
	bid := Message{Type: MsgBid, Round: 7, TraceID: "m3.r7", Delta: 1.5, B: 0.25}
	// Warm the buffers and intern caches.
	for i := 0; i < 4; i++ {
		if err := c.Send(price); err != nil {
			t.Fatal(err)
		}
		if err := c.Send(bid); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := c.Send(price); err != nil {
			t.Fatal(err)
		}
		if err := c.Send(bid); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("frame codec hot path allocates %.1f/op, want 0", allocs)
	}
}

// TestFrameWriteDeadline verifies Send surfaces net write timeouts as
// net.Error timeouts — the signal the shard loop evicts write-stalled
// agents on.
func TestFrameWriteDeadline(t *testing.T) {
	mgr, agent := net.Pipe()
	defer mgr.Close()
	defer agent.Close()
	c := NewFrameCodec(mgr, mgr)
	_ = mgr.SetWriteDeadline(time.Now().Add(20 * time.Millisecond))
	err := c.Send(Message{Type: MsgPrice, Round: 1, Price: 0.1})
	if err == nil {
		t.Fatal("Send to unread pipe: want timeout error")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("Send error %v: want net.Error timeout", err)
	}
}
