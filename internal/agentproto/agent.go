package agentproto

import (
	"fmt"
	"io"
	"net"
	"sync"

	"mpr/internal/core"
)

// AgentConfig describes the job a bidding agent represents.
type AgentConfig struct {
	JobID        string
	Cores        float64
	WattsPerCore float64
	MaxFrac      float64
	// Strategy computes the bid for each announced price — typically a
	// core.RationalBidder wrapping the user's private cost model; the
	// cost model never crosses the wire (the privacy property of supply
	// function bidding, Section VI).
	Strategy core.Bidder
	// OnOrder, when set, is called with each awarded reduction.
	OnOrder func(reductionCores, price, paymentRate float64)
	// OnLift, when set, is called when the emergency ends.
	OnLift func()
	// Wire selects the transport: WireJSON (default, the backward-
	// compatible JSON-lines protocol) or WireBinary (length-prefixed
	// frames negotiated in the hello exchange — see frame.go).
	Wire string
}

// Agent is a connected user bidding agent. It answers price announcements
// autonomously — the "autonomous software agents" MPR-INT relies on
// (Section III-D).
type Agent struct {
	cfg   AgentConfig
	conn  net.Conn
	codec wireCodec

	// wireVersion is the negotiated binary protocol version (0 on the
	// JSON transport).
	wireVersion int

	mu      sync.Mutex
	lastBid core.Bid
	orders  int
	done    chan struct{}
	err     error
}

// Dial connects an agent to the manager and registers its job.
func Dial(addr string, cfg AgentConfig) (*Agent, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("agentproto: dial %s: %w", addr, err)
	}
	return DialConn(conn, cfg)
}

// DialConn registers an agent over an already-established connection —
// the transport-agnostic path load generators use to drive tens of
// thousands of agents over in-memory net.Pipe pairs (no file
// descriptors) against an in-process Manager.ServeConn. The agent owns
// conn and closes it when its loop ends or registration fails.
func DialConn(conn net.Conn, cfg AgentConfig) (*Agent, error) {
	if err := cfg.validate(); err != nil {
		conn.Close()
		return nil, err
	}
	a := &Agent{cfg: cfg, conn: conn, done: make(chan struct{})}
	if cfg.Wire == WireBinary {
		// Binary framing opens with the negotiation preamble; the manager
		// sniffs its first byte to tell us apart from a JSON hello.
		v, err := negotiateClient(conn, conn)
		if err != nil {
			conn.Close()
			return nil, err
		}
		a.wireVersion = v
		a.codec = NewFrameCodec(conn, conn)
	} else {
		a.codec = NewCodec(conn)
	}
	if err := a.codec.Send(Message{
		Type:         MsgHello,
		JobID:        cfg.JobID,
		Cores:        cfg.Cores,
		WattsPerCore: cfg.WattsPerCore,
		MaxFrac:      cfg.MaxFrac,
	}); err != nil {
		conn.Close()
		return nil, err
	}
	go a.loop()
	return a, nil
}

func (cfg *AgentConfig) validate() error {
	if cfg.JobID == "" || cfg.Cores <= 0 || cfg.WattsPerCore <= 0 || cfg.MaxFrac <= 0 {
		return fmt.Errorf("agentproto: agent config needs job id and positive cores/watts/max_frac")
	}
	if cfg.Strategy == nil {
		return fmt.Errorf("agentproto: agent needs a bidding strategy")
	}
	if cfg.Wire != "" && cfg.Wire != WireJSON && cfg.Wire != WireBinary {
		return fmt.Errorf("agentproto: unknown wire %q (want %q or %q)", cfg.Wire, WireJSON, WireBinary)
	}
	return nil
}

// WireVersion returns the negotiated binary protocol version, 0 when the
// agent speaks JSON lines.
func (a *Agent) WireVersion() int { return a.wireVersion }

// Close disconnects the agent.
func (a *Agent) Close() error { return a.conn.Close() }

// Done is closed when the agent's connection ends.
func (a *Agent) Done() <-chan struct{} { return a.done }

// Err returns the terminal error after Done is closed (nil on clean EOF).
func (a *Agent) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// LastBid returns the most recent bid the agent sent.
func (a *Agent) LastBid() core.Bid {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastBid
}

// Orders returns how many reduction orders the agent has received.
func (a *Agent) Orders() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.orders
}

func (a *Agent) loop() {
	defer close(a.done)
	defer a.conn.Close()
	for {
		msg, err := a.codec.Recv()
		if err != nil {
			if err != io.EOF {
				a.mu.Lock()
				a.err = err
				a.mu.Unlock()
			}
			return
		}
		switch msg.Type {
		case MsgPrice:
			bid := a.cfg.Strategy.RespondBid(msg.Price)
			a.mu.Lock()
			a.lastBid = bid
			a.mu.Unlock()
			// Echo the broadcast's trace ID (empty for untraced/old
			// managers) so the manager can link this bid's respond_bid
			// span to its market_round.
			if err := a.codec.Send(Message{Type: MsgBid, Round: msg.Round, TraceID: msg.TraceID, Delta: bid.Delta, B: bid.B}); err != nil {
				a.mu.Lock()
				a.err = err
				a.mu.Unlock()
				return
			}
		case MsgOrder:
			a.mu.Lock()
			a.orders++
			a.mu.Unlock()
			if a.cfg.OnOrder != nil {
				a.cfg.OnOrder(msg.ReductionCores, msg.Price, msg.PaymentRate)
			}
		case MsgLift:
			if a.cfg.OnLift != nil {
				a.cfg.OnLift()
			}
		case MsgError:
			a.mu.Lock()
			a.err = fmt.Errorf("agentproto: manager error: %s", msg.Reason)
			a.mu.Unlock()
			return
		}
	}
}
