// Package trace provides the workload substrate of the MPR reproduction:
// the Standard Workload Format (SWF) of the Parallel Workloads Archive
// (parser and writer), seeded synthetic generators calibrated to the four
// clusters the paper evaluates (Gaia, PIK, RICC, Metacentrum), utilization
// analysis (Fig. 1(b), Fig. 6), and the workload scale-up used when
// studying oversubscription (Table I: "workload scaled-up proportional to
// the extra capacity").
//
// The Parallel Workloads Archive logs themselves are not redistributable
// and the build environment is offline, so experiments run on synthetic
// traces whose job counts, spans, peak allocations, and utilization
// distributions are calibrated to the published characteristics of each
// log (see DESIGN.md §3). Real SWF files drop in via ParseSWF.
package trace

import (
	"fmt"
	"sort"
)

// Job is one batch job of a workload trace. Times are in seconds relative
// to the trace start.
type Job struct {
	// ID is the job's number within the trace (1-based in SWF).
	ID int
	// Submit is when the job entered the queue.
	Submit int64
	// Wait is the queuing delay; the job started at Submit+Wait.
	Wait int64
	// Runtime is the execution duration at full speed.
	Runtime int64
	// Cores is the number of allocated processors.
	Cores int
}

// Start returns the job's start time in seconds.
func (j Job) Start() int64 { return j.Submit + j.Wait }

// End returns the job's completion time at full speed.
func (j Job) End() int64 { return j.Start() + j.Runtime }

// CoreSeconds returns the job's resource footprint.
func (j Job) CoreSeconds() int64 { return j.Runtime * int64(j.Cores) }

// Trace is a workload: an ordered set of jobs plus cluster metadata.
type Trace struct {
	// Name identifies the workload (e.g. "gaia").
	Name string
	// TotalCores is the cluster size the trace was collected on.
	TotalCores int
	// Jobs is ordered by submit time.
	Jobs []Job
	// Malformed counts data lines ParseSWF could not decode (truncated
	// or non-numeric fields). Archive logs routinely carry damaged
	// lines, so the parser skips and counts them instead of failing.
	Malformed int
	// Skipped counts well-formed jobs ParseSWF dropped for unknown (-1)
	// or non-positive runtime or processor count.
	Skipped int
}

// Validate checks trace invariants: jobs ordered by submit time, positive
// runtimes and core counts, allocations within the cluster size.
func (t *Trace) Validate() error {
	if t.TotalCores <= 0 {
		return fmt.Errorf("trace %s: total cores must be positive", t.Name)
	}
	var prev int64
	for i, j := range t.Jobs {
		if j.Submit < prev {
			return fmt.Errorf("trace %s: job %d out of submit order", t.Name, i)
		}
		prev = j.Submit
		if j.Runtime <= 0 {
			return fmt.Errorf("trace %s: job %d has non-positive runtime", t.Name, i)
		}
		if j.Cores <= 0 {
			return fmt.Errorf("trace %s: job %d has non-positive cores", t.Name, i)
		}
		if j.Cores > t.TotalCores {
			return fmt.Errorf("trace %s: job %d allocates %d cores on a %d-core system", t.Name, i, j.Cores, t.TotalCores)
		}
		if j.Wait < 0 {
			return fmt.Errorf("trace %s: job %d has negative wait", t.Name, i)
		}
	}
	return nil
}

// Span returns the time from the first submit to the last job end, in
// seconds. Zero for an empty trace.
func (t *Trace) Span() int64 {
	if len(t.Jobs) == 0 {
		return 0
	}
	var end int64
	for _, j := range t.Jobs {
		if e := j.End(); e > end {
			end = e
		}
	}
	return end - t.Jobs[0].Submit
}

// PeakAllocation replays the trace and returns the maximum simultaneous
// core allocation (the 2012-core peak of Fig. 6 for Gaia).
func (t *Trace) PeakAllocation() int {
	type event struct {
		at    int64
		delta int
	}
	evs := make([]event, 0, 2*len(t.Jobs))
	for _, j := range t.Jobs {
		evs = append(evs, event{j.Start(), j.Cores}, event{j.End(), -j.Cores})
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].at != evs[b].at {
			return evs[a].at < evs[b].at
		}
		// Releases before acquisitions at the same instant.
		return evs[a].delta < evs[b].delta
	})
	cur, peak := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// SortBySubmit orders jobs by submit time (stable), re-establishing the
// Validate invariant after programmatic edits.
func (t *Trace) SortBySubmit() {
	sort.SliceStable(t.Jobs, func(a, b int) bool { return t.Jobs[a].Submit < t.Jobs[b].Submit })
}
