package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mpr/internal/check/floats"
)

func TestJobAccessors(t *testing.T) {
	j := Job{ID: 1, Submit: 100, Wait: 20, Runtime: 300, Cores: 4}
	if j.Start() != 120 || j.End() != 420 || j.CoreSeconds() != 1200 {
		t.Errorf("accessors: start=%d end=%d cs=%d", j.Start(), j.End(), j.CoreSeconds())
	}
}

func TestTraceValidate(t *testing.T) {
	good := &Trace{Name: "g", TotalCores: 8, Jobs: []Job{
		{ID: 1, Submit: 0, Runtime: 60, Cores: 2},
		{ID: 2, Submit: 30, Runtime: 60, Cores: 8},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	bad := []*Trace{
		{Name: "cores0", TotalCores: 0},
		{Name: "order", TotalCores: 8, Jobs: []Job{{Submit: 10, Runtime: 1, Cores: 1}, {Submit: 5, Runtime: 1, Cores: 1}}},
		{Name: "runtime", TotalCores: 8, Jobs: []Job{{Submit: 0, Runtime: 0, Cores: 1}}},
		{Name: "jobcores", TotalCores: 8, Jobs: []Job{{Submit: 0, Runtime: 1, Cores: 0}}},
		{Name: "toolarge", TotalCores: 8, Jobs: []Job{{Submit: 0, Runtime: 1, Cores: 9}}},
		{Name: "wait", TotalCores: 8, Jobs: []Job{{Submit: 0, Wait: -1, Runtime: 1, Cores: 1}}},
	}
	for _, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("trace %s should be invalid", tr.Name)
		}
	}
}

func TestPeakAllocation(t *testing.T) {
	tr := &Trace{Name: "p", TotalCores: 10, Jobs: []Job{
		{ID: 1, Submit: 0, Runtime: 100, Cores: 4},
		{ID: 2, Submit: 50, Runtime: 100, Cores: 5}, // overlaps job 1 → 9
		{ID: 3, Submit: 200, Runtime: 10, Cores: 3}, // isolated
	}}
	if p := tr.PeakAllocation(); p != 9 {
		t.Errorf("peak = %d, want 9", p)
	}
	// Back-to-back jobs do not overlap (release before acquire).
	tr2 := &Trace{TotalCores: 4, Jobs: []Job{
		{Submit: 0, Runtime: 100, Cores: 4},
		{Submit: 100, Runtime: 100, Cores: 4},
	}}
	if p := tr2.PeakAllocation(); p != 4 {
		t.Errorf("back-to-back peak = %d, want 4", p)
	}
}

func TestSpan(t *testing.T) {
	tr := &Trace{TotalCores: 4, Jobs: []Job{
		{Submit: 100, Runtime: 50, Cores: 1},
		{Submit: 120, Runtime: 200, Cores: 1},
	}}
	if s := tr.Span(); s != 220 {
		t.Errorf("span = %d, want 220", s)
	}
	if (&Trace{}).Span() != 0 {
		t.Error("empty span should be 0")
	}
}

const sampleSWF = `; Version: 2.2
; MaxProcs: 128
; Note: synthetic sample
1 0 10 3600 16 -1 -1 16 3600 -1 1 1 1 -1 -1 -1 -1 -1
2 100 0 1800 32 -1 -1 32 1800 -1 1 2 1 -1 -1 -1 -1 -1
3 200 5 -1 8 -1 -1 8 900 -1 0 3 1 -1 -1 -1 -1 -1
4 300 0 900 -1 -1 -1 8 900 -1 0 3 1 -1 -1 -1 -1 -1
5 400 -1 600 8 -1 -1 8 600 -1 1 4 1 -1 -1 -1 -1 -1
`

func TestParseSWF(t *testing.T) {
	tr, err := ParseSWF(strings.NewReader(sampleSWF), "sample")
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalCores != 128 {
		t.Errorf("MaxProcs header not honored: %d", tr.TotalCores)
	}
	// Jobs 3 (runtime -1) and 4 (procs -1) skipped.
	if len(tr.Jobs) != 3 {
		t.Fatalf("jobs = %d, want 3", len(tr.Jobs))
	}
	if tr.Skipped != 2 || tr.Malformed != 0 {
		t.Errorf("skipped = %d, malformed = %d, want 2, 0", tr.Skipped, tr.Malformed)
	}
	if tr.Jobs[0].ID != 1 || tr.Jobs[0].Wait != 10 || tr.Jobs[0].Cores != 16 {
		t.Errorf("job 1 = %+v", tr.Jobs[0])
	}
	// Negative wait clamped to 0.
	if tr.Jobs[2].Wait != 0 {
		t.Errorf("negative wait not clamped: %+v", tr.Jobs[2])
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("parsed trace invalid: %v", err)
	}
}

func TestParseSWFNoHeader(t *testing.T) {
	tr, err := ParseSWF(strings.NewReader("1 0 0 100 4 -1 -1 -1 -1 -1 1 1 1 -1 -1 -1 -1 -1\n"), "x")
	if err != nil {
		t.Fatal(err)
	}
	// Without MaxProcs, TotalCores falls back to the peak allocation.
	if tr.TotalCores != 4 {
		t.Errorf("fallback cores = %d, want 4", tr.TotalCores)
	}
}

// TestParseSWFMalformed: damaged data lines are skipped and counted —
// never fatal, never panicking — and the surviving jobs still form a
// valid trace. Archive logs carry this kind of damage routinely.
func TestParseSWFMalformed(t *testing.T) {
	good := "7 50 0 100 4 -1 -1 -1 -1 -1 1 1 1 -1 -1 -1 -1 -1\n"
	cases := []struct {
		name      string
		input     string
		malformed int
		skipped   int
		jobs      int
	}{
		{"truncated", "1 2 3\n" + good, 1, 0, 1},
		{"empty fields only", "   \n\t\n" + good, 0, 0, 1},
		{"bad id", "x 0 0 100 4\n" + good, 1, 0, 1},
		{"bad submit", "1 x 0 100 4\n" + good, 1, 0, 1},
		{"bad wait", "1 0 x 100 4\n" + good, 1, 0, 1},
		{"bad runtime", "1 0 0 x 4\n" + good, 1, 0, 1},
		{"bad procs", "1 0 0 100 x\n" + good, 1, 0, 1},
		{"float runtime", "1 0 0 1.5 4\n" + good, 1, 0, 1},
		{"negative runtime", "1 0 0 -7 4\n" + good, 0, 1, 1},
		{"unknown runtime", "1 0 0 -1 4\n" + good, 0, 1, 1},
		{"zero procs", "1 0 0 100 0\n" + good, 0, 1, 1},
		{"mixed damage", "garbage\n1 2 3\n" + good + "2 0 0 -1 4\n", 2, 1, 1},
		{"all damaged", "a b c\nd e f\n", 2, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr, err := ParseSWF(strings.NewReader(c.input), c.name)
			if err != nil {
				t.Fatalf("malformed input must not be fatal: %v", err)
			}
			if tr.Malformed != c.malformed || tr.Skipped != c.skipped || len(tr.Jobs) != c.jobs {
				t.Errorf("malformed=%d skipped=%d jobs=%d, want %d/%d/%d",
					tr.Malformed, tr.Skipped, len(tr.Jobs), c.malformed, c.skipped, c.jobs)
			}
			if len(tr.Jobs) > 0 {
				if err := tr.Validate(); err != nil {
					t.Errorf("surviving jobs invalid: %v", err)
				}
			}
		})
	}
}

// Out-of-order submit timestamps are legal in archive logs; the parser
// re-sorts so the Validate ordering invariant holds on the result.
func TestParseSWFOutOfOrder(t *testing.T) {
	input := "3 200 0 100 2 -1 -1 -1 -1 -1 1 1 1 -1 -1 -1 -1 -1\n" +
		"1 0 0 100 2 -1 -1 -1 -1 -1 1 1 1 -1 -1 -1 -1 -1\n" +
		"2 100 0 100 2 -1 -1 -1 -1 -1 1 1 1 -1 -1 -1 -1 -1\n"
	tr, err := ParseSWF(strings.NewReader(input), "ooo")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 3 {
		t.Fatalf("jobs = %d, want 3", len(tr.Jobs))
	}
	for i, want := range []int{1, 2, 3} {
		if tr.Jobs[i].ID != want {
			t.Errorf("job[%d].ID = %d, want %d", i, tr.Jobs[i].ID, want)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("re-sorted trace invalid: %v", err)
	}
}

func TestSWFRoundTrip(t *testing.T) {
	orig := &Trace{Name: "rt", TotalCores: 64, Jobs: []Job{
		{ID: 1, Submit: 0, Wait: 5, Runtime: 600, Cores: 8},
		{ID: 2, Submit: 60, Wait: 0, Runtime: 1200, Cores: 32},
	}}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSWF(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalCores != orig.TotalCores || len(back.Jobs) != len(orig.Jobs) {
		t.Fatalf("round trip: %+v", back)
	}
	for i := range orig.Jobs {
		if back.Jobs[i] != orig.Jobs[i] {
			t.Errorf("job %d: %+v != %+v", i, back.Jobs[i], orig.Jobs[i])
		}
	}
}

func smallConfig(seed int64) GenConfig {
	return GenConfig{
		Name: "small", Seed: seed, TotalCores: 256, Days: 7,
		JobCount: 2000, MeanUtil: 0.7, MaxJobFrac: 0.25,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("non-deterministic job count: %d vs %d", len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs", i)
		}
	}
	c, err := Generate(smallConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Jobs) == len(a.Jobs) {
		same := true
		for i := range a.Jobs {
			if a.Jobs[i] != c.Jobs[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestGenerateValidAndCalibrated(t *testing.T) {
	tr, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Job count within 2x of target.
	if n := len(tr.Jobs); n < 1000 || n > 4000 {
		t.Errorf("job count %d far from target 2000", n)
	}
	// Mean utilization near target.
	cdf := UtilizationCDF(tr, 60)
	mean := 0.0
	for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		mean += cdf.Quantile(p)
	}
	mean /= 5
	if !floats.AbsEqual(mean, 0.7, 0.12) {
		t.Errorf("mean utilization %.3f far from 0.7", mean)
	}
	// Peak never exceeds the cluster.
	if p := tr.PeakAllocation(); p > tr.TotalCores {
		t.Errorf("peak %d exceeds cluster %d", p, tr.TotalCores)
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	bad := []GenConfig{
		{Name: "c", TotalCores: 0, Days: 1, JobCount: 1, MeanUtil: 0.5, MaxJobFrac: 0.5},
		{Name: "d", TotalCores: 8, Days: 0, JobCount: 1, MeanUtil: 0.5, MaxJobFrac: 0.5},
		{Name: "j", TotalCores: 8, Days: 1, JobCount: 0, MeanUtil: 0.5, MaxJobFrac: 0.5},
		{Name: "u", TotalCores: 8, Days: 1, JobCount: 1, MeanUtil: 0, MaxJobFrac: 0.5},
		{Name: "u2", TotalCores: 8, Days: 1, JobCount: 1, MeanUtil: 1, MaxJobFrac: 0.5},
		{Name: "f", TotalCores: 8, Days: 1, JobCount: 1, MeanUtil: 0.5, MaxJobFrac: 0},
	}
	for _, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %s should be rejected", cfg.Name)
		}
	}
}

func TestWithDays(t *testing.T) {
	cfg := PIKConfig(1)
	short := cfg.WithDays(90)
	if short.Days != 90 {
		t.Errorf("days = %d", short.Days)
	}
	wantJobs := int(float64(cfg.JobCount) * 90 / float64(cfg.Days))
	if short.JobCount != wantJobs {
		t.Errorf("jobs = %d, want %d", short.JobCount, wantJobs)
	}
	if same := cfg.WithDays(cfg.Days); same.JobCount != cfg.JobCount {
		t.Error("identity WithDays changed job count")
	}
	if z := cfg.WithDays(0); z.Days != cfg.Days {
		t.Error("WithDays(0) should be identity")
	}
}

func TestScaleUp(t *testing.T) {
	tr, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := tr.ScaleUp(1.2, 99)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(scaled.Jobs)) / float64(len(tr.Jobs))
	if ratio < 1.15 || ratio > 1.25 {
		t.Errorf("scale-up ratio %.3f, want ~1.2", ratio)
	}
	if scaled.TotalCores != int(math.Ceil(float64(tr.TotalCores)*1.2)) {
		t.Errorf("scaled cores = %d", scaled.TotalCores)
	}
	if err := scaled.Validate(); err != nil {
		t.Errorf("scaled trace invalid: %v", err)
	}
	if _, err := tr.ScaleUp(0.5, 1); err == nil {
		t.Error("factor < 1 accepted")
	}
	// Factor 1 is identity in load.
	id, err := tr.ScaleUp(1, 1)
	if err != nil || len(id.Jobs) != len(tr.Jobs) {
		t.Errorf("identity scale: %v, %d jobs", err, len(id.Jobs))
	}
}

// Property: ScaleUp preserves per-job fields of the original jobs.
func TestScaleUpPreservesOriginals(t *testing.T) {
	tr, _ := Generate(smallConfig(3))
	prop := func(seed int64) bool {
		scaled, err := tr.ScaleUp(1.3, seed)
		if err != nil {
			return false
		}
		// Every original job must appear in the scaled trace.
		seen := make(map[Job]int)
		for _, j := range scaled.Jobs {
			k := j
			k.ID = 0
			seen[k]++
		}
		for _, j := range tr.Jobs {
			k := j
			k.ID = 0
			if seen[k] == 0 {
				return false
			}
			seen[k]--
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestAllocationSeries(t *testing.T) {
	tr := &Trace{Name: "a", TotalCores: 10, Jobs: []Job{
		{ID: 1, Submit: 0, Runtime: 120, Cores: 4},
		{ID: 2, Submit: 60, Runtime: 120, Cores: 3},
	}}
	s := AllocationSeries(tr, 60)
	if s.Len() < 3 {
		t.Fatalf("series len = %d", s.Len())
	}
	if s.V[0] != 4 {
		t.Errorf("slot0 = %v, want 4", s.V[0])
	}
	if s.V[1] != 7 {
		t.Errorf("slot1 = %v, want 7", s.V[1])
	}
	if s.Max() != 7 {
		t.Errorf("max = %v", s.Max())
	}
	if AllocationSeries(&Trace{TotalCores: 1}, 60).Len() != 0 {
		t.Error("empty trace series should be empty")
	}
}

func TestUtilizationCDF(t *testing.T) {
	tr := &Trace{Name: "u", TotalCores: 10, Jobs: []Job{
		{ID: 1, Submit: 0, Runtime: 600, Cores: 5},
	}}
	cdf := UtilizationCDF(tr, 60)
	if cdf.Len() == 0 {
		t.Fatal("empty CDF")
	}
	// Utilization constantly 0.5.
	if q := cdf.Quantile(0.5); !floats.AbsEqual(q, 0.5, 1e-9) {
		t.Errorf("median util = %v, want 0.5", q)
	}
}

func TestPresets(t *testing.T) {
	ps := Presets(1)
	if len(ps) != 4 {
		t.Fatalf("presets = %d", len(ps))
	}
	for name, cfg := range ps {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// Published job counts and cluster sizes.
	if ps["gaia"].JobCount != 51987 || ps["gaia"].TotalCores != 2004 {
		t.Errorf("gaia preset = %+v", ps["gaia"])
	}
	if ps["pik"].JobCount != 742964 {
		t.Errorf("pik preset = %+v", ps["pik"])
	}
	if ps["ricc"].JobCount != 447794 {
		t.Errorf("ricc preset = %+v", ps["ricc"])
	}
	if ps["metacentrum"].JobCount != 103656 || ps["metacentrum"].TotalCores != 528 {
		t.Errorf("metacentrum preset = %+v", ps["metacentrum"])
	}
}

// The Fig. 1(b) ordering: Gaia is the most utilized cluster, PIK the
// least. Compare the 95th percentile utilization on shortened traces.
func TestPresetUtilizationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p95 := func(cfg GenConfig) float64 {
		tr, err := Generate(cfg.WithDays(14))
		if err != nil {
			t.Fatal(err)
		}
		return UtilizationCDF(tr, 300).Quantile(0.95)
	}
	gaia := p95(GaiaConfig(5))
	meta := p95(MetacentrumConfig(5))
	ricc := p95(RICCConfig(5))
	pik := p95(PIKConfig(5))
	if !(gaia > meta && meta > ricc && ricc > pik) {
		t.Errorf("p95 ordering violated: gaia=%.2f meta=%.2f ricc=%.2f pik=%.2f", gaia, meta, ricc, pik)
	}
	if gaia < 0.80 {
		t.Errorf("gaia p95 = %.2f, want high utilization", gaia)
	}
	if pik > 0.6 {
		t.Errorf("pik p95 = %.2f, want low utilization", pik)
	}
}
