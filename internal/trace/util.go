package trace

import (
	"mpr/internal/stats"
)

// AllocationSeries replays the trace (ignoring any capacity constraint)
// and returns the simultaneous core allocation sampled at the given slot
// width in seconds — the Fig. 6 timeline for Gaia.
func AllocationSeries(t *Trace, slotSeconds int64) *stats.Series {
	if slotSeconds <= 0 {
		slotSeconds = 60
	}
	span := t.Span()
	if span <= 0 || len(t.Jobs) == 0 {
		return &stats.Series{}
	}
	origin := t.Jobs[0].Submit
	slots := int(span/slotSeconds) + 1
	diff := make([]int, slots+1)
	for _, j := range t.Jobs {
		s := int((j.Start() - origin) / slotSeconds)
		e := int((j.End() - origin) / slotSeconds)
		if s < 0 {
			s = 0
		}
		if e >= slots {
			e = slots - 1
		}
		if e < s {
			e = s
		}
		diff[s] += j.Cores
		diff[e+1] -= j.Cores
	}
	out := &stats.Series{T: make([]int64, slots), V: make([]float64, slots)}
	cur := 0
	for i := 0; i < slots; i++ {
		cur += diff[i]
		out.T[i] = int64(i) * slotSeconds
		out.V[i] = float64(cur)
	}
	return out
}

// UtilizationCDF returns the empirical CDF of the trace's utilization
// (allocation / total cores) sampled at the given slot width — the
// Fig. 1(b) curves.
func UtilizationCDF(t *Trace, slotSeconds int64) *stats.CDF {
	s := AllocationSeries(t, slotSeconds)
	u := make([]float64, len(s.V))
	for i, v := range s.V {
		u[i] = v / float64(t.TotalCores)
	}
	return stats.NewCDF(u)
}
