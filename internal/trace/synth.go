package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// GenConfig parameterizes the synthetic workload generator. The generator
// first draws a target-utilization time series (a mean-reverting AR(1)
// process with diurnal and weekly modulation) and then spawns jobs to
// track it — directly controlling the utilization distribution, which is
// the workload property every oversubscription experiment depends on.
type GenConfig struct {
	Name       string
	Seed       int64
	TotalCores int
	Days       int
	// JobCount is the approximate number of jobs to emit; the generator
	// calibrates job runtimes so the requested utilization is reached
	// with roughly this many jobs.
	JobCount int
	// MeanUtil is the long-run mean of the target utilization.
	MeanUtil float64
	// UtilSigma is the per-minute innovation of the AR(1) process.
	UtilSigma float64
	// Revert is the AR(1) mean-reversion rate per minute.
	Revert float64
	// DiurnalAmp modulates the mean by ±amp over a day.
	DiurnalAmp float64
	// WeekendDip scales the weekend mean down by the given fraction.
	WeekendDip float64
	// MaxJobFrac caps a single job's size as a fraction of the cluster.
	MaxJobFrac float64
	// RuntimeSigma is the log-stddev of the lognormal runtime
	// distribution (the runtime scale is calibrated from JobCount).
	RuntimeSigma float64
}

// Validate checks generator parameters.
func (c *GenConfig) Validate() error {
	if c.TotalCores <= 0 {
		return fmt.Errorf("trace: generator %s: total cores must be positive", c.Name)
	}
	if c.Days <= 0 {
		return fmt.Errorf("trace: generator %s: days must be positive", c.Name)
	}
	if c.JobCount <= 0 {
		return fmt.Errorf("trace: generator %s: job count must be positive", c.Name)
	}
	if c.MeanUtil <= 0 || c.MeanUtil >= 1 {
		return fmt.Errorf("trace: generator %s: mean utilization must be in (0,1)", c.Name)
	}
	if c.MaxJobFrac <= 0 || c.MaxJobFrac > 1 {
		return fmt.Errorf("trace: generator %s: max job fraction must be in (0,1]", c.Name)
	}
	return nil
}

// WithDays returns a copy of the config spanning the given number of days
// with the job count scaled proportionally — used to run shortened
// versions of the long PIK/RICC workloads in benchmarks.
func (c GenConfig) WithDays(days int) GenConfig {
	if days <= 0 || days == c.Days {
		return c
	}
	scaled := c
	scaled.JobCount = int(float64(c.JobCount) * float64(days) / float64(c.Days))
	if scaled.JobCount < 1 {
		scaled.JobCount = 1
	}
	scaled.Days = days
	return scaled
}

// jobSizer draws job core counts: powers of two with geometrically
// decaying weights, capped at maxCores — the canonical shape of parallel
// workload size distributions.
type jobSizer struct {
	sizes  []int
	cum    []float64
	meanSz float64
}

func newJobSizer(maxCores int) *jobSizer {
	const decay = 0.62
	s := &jobSizer{}
	w := 1.0
	totalW := 0.0
	weighted := 0.0
	for sz := 1; sz <= maxCores; sz *= 2 {
		s.sizes = append(s.sizes, sz)
		totalW += w
		weighted += w * float64(sz)
		s.cum = append(s.cum, totalW)
		w *= decay
	}
	for i := range s.cum {
		s.cum[i] /= totalW
	}
	s.meanSz = weighted / totalW
	return s
}

func (s *jobSizer) draw(rng *rand.Rand) int {
	u := rng.Float64()
	for i, c := range s.cum {
		if u <= c {
			return s.sizes[i]
		}
	}
	return s.sizes[len(s.sizes)-1]
}

// Generate produces a deterministic synthetic trace for the config.
func Generate(cfg GenConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.UtilSigma <= 0 {
		cfg.UtilSigma = 0.004
	}
	if cfg.Revert <= 0 {
		cfg.Revert = 0.005
	}
	if cfg.RuntimeSigma <= 0 {
		cfg.RuntimeSigma = 1.0
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	minutes := cfg.Days * 24 * 60
	maxJob := int(cfg.MaxJobFrac * float64(cfg.TotalCores))
	if maxJob < 1 {
		maxJob = 1
	}
	sizer := newJobSizer(maxJob)

	// Calibrate the runtime scale so that the expected number of spawned
	// jobs matches JobCount: total core-minutes ≈ MeanUtil·cores·minutes,
	// and each job contributes meanSize·meanRuntime core-minutes.
	totalCoreMinutes := cfg.MeanUtil * float64(cfg.TotalCores) * float64(minutes)
	meanRuntime := totalCoreMinutes / (float64(cfg.JobCount) * sizer.meanSz)
	if meanRuntime < 5 {
		meanRuntime = 5
	}
	// Lognormal with mean = meanRuntime: μ = ln(mean) − σ²/2.
	sigma := cfg.RuntimeSigma
	mu := math.Log(meanRuntime) - sigma*sigma/2

	t := &Trace{Name: cfg.Name, TotalCores: cfg.TotalCores}
	releases := make([]int, minutes+1)
	cur := 0
	util := cfg.MeanUtil
	nextID := 1
	maxRuntime := float64(3 * 24 * 60) // cap at 3 days

	for m := 0; m < minutes; m++ {
		cur -= releases[m]

		// Target utilization: AR(1) around a modulated mean.
		day := (m / (24 * 60)) % 7
		weekend := 1.0
		if day >= 5 {
			weekend = 1 - cfg.WeekendDip
		}
		diurnal := 1 + cfg.DiurnalAmp*math.Sin(2*math.Pi*float64(m%(24*60))/(24*60)-math.Pi/2)
		mean := cfg.MeanUtil * diurnal * weekend
		util += cfg.Revert*(mean-util) + cfg.UtilSigma*rng.NormFloat64()
		if util < 0.02 {
			util = 0.02
		}
		if util > 0.995 {
			util = 0.995
		}

		target := int(util * float64(cfg.TotalCores))
		for cur < target {
			cores := sizer.draw(rng)
			if cores > cfg.TotalCores-cur {
				cores = cfg.TotalCores - cur
				if cores < 1 {
					break
				}
			}
			runtime := math.Exp(mu + sigma*rng.NormFloat64())
			if runtime < 5 {
				runtime = 5
			}
			if runtime > maxRuntime {
				runtime = maxRuntime
			}
			runMin := int(runtime)
			end := m + runMin
			if end > minutes {
				end = minutes
				runMin = end - m
				if runMin < 1 {
					runMin = 1
				}
			}
			if end <= len(releases)-1 {
				releases[end] += cores
			}
			// Submit lands exactly on the minute boundary so that the
			// minute-level release accounting matches the second-level
			// replay and the peak never exceeds the cluster.
			t.Jobs = append(t.Jobs, Job{
				ID:      nextID,
				Submit:  int64(m) * 60,
				Wait:    0,
				Runtime: int64(runMin) * 60,
				Cores:   cores,
			})
			nextID++
			cur += cores
		}
	}
	t.SortBySubmit()
	return t, nil
}

// ScaleUp returns a new trace whose load is scaled by the given factor
// (≥ 1) by probabilistically cloning jobs with jittered submit times —
// the paper's "workload scaled-up proportional to the extra capacity"
// (Table I). The cluster size grows by the same factor.
func (t *Trace) ScaleUp(factor float64, seed int64) (*Trace, error) {
	if factor < 1 {
		return nil, fmt.Errorf("trace: scale factor must be >= 1, got %v", factor)
	}
	rng := rand.New(rand.NewSource(seed))
	out := &Trace{
		Name:       fmt.Sprintf("%s-x%.2f", t.Name, factor),
		TotalCores: int(math.Ceil(float64(t.TotalCores) * factor)),
	}
	out.Jobs = append([]Job(nil), t.Jobs...)
	nextID := len(t.Jobs) + 1
	extra := factor - 1
	for _, j := range t.Jobs {
		copies := int(extra)
		if rng.Float64() < extra-float64(copies) {
			copies++
		}
		for c := 0; c < copies; c++ {
			clone := j
			clone.ID = nextID
			nextID++
			// Jitter the clone's submit by ±30 minutes, staying
			// non-negative.
			jitter := int64(rng.Intn(3600)) - 1800
			clone.Submit += jitter
			if clone.Submit < 0 {
				clone.Submit = 0
			}
			out.Jobs = append(out.Jobs, clone)
		}
	}
	out.SortBySubmit()
	return out, nil
}
