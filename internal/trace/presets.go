package trace

// Cluster presets calibrated to the published characteristics of the four
// Parallel Workloads Archive logs the paper evaluates (Section IV-A and
// V-E): job counts, spans, peak allocations, and the utilization CDF
// shapes of Fig. 1(b) (~5% of Gaia's capacity rarely used, ~20% of
// Metacentrum's, ~55% of RICC's, ~65% of PIK's). Mean utilization and
// variability were tuned so the Gaia overload probabilities approximate
// Table I's 2.5-14% across 10-25% oversubscription.

// GaiaConfig models the University of Luxembourg Gaia cluster log:
// 51,987 jobs over three months on 2004 cores with high utilization.
func GaiaConfig(seed int64) GenConfig {
	return GenConfig{
		Name:       "gaia",
		Seed:       seed,
		TotalCores: 2004,
		Days:       92,
		JobCount:   51987,
		MeanUtil:   0.68,
		UtilSigma:  0.005,
		Revert:     0.004,
		DiurnalAmp: 0.08,
		WeekendDip: 0.06,
		MaxJobFrac: 0.25,
	}
}

// PIKConfig models the PIK IBM iDataPlex log: 742,964 jobs over three
// years with a 6,963-core peak allocation and low average utilization
// (~65% of capacity rarely used).
func PIKConfig(seed int64) GenConfig {
	return GenConfig{
		Name:       "pik",
		Seed:       seed,
		TotalCores: 6963,
		Days:       1187,
		JobCount:   742964,
		MeanUtil:   0.30,
		UtilSigma:  0.006,
		Revert:     0.004,
		DiurnalAmp: 0.10,
		WeekendDip: 0.10,
		MaxJobFrac: 0.20,
	}
}

// RICCConfig models the RIKEN RICC log: 447,794 jobs over five months on
// a large cluster with a 20,416-core peak allocation (~55% of capacity
// rarely used).
func RICCConfig(seed int64) GenConfig {
	return GenConfig{
		Name:       "ricc",
		Seed:       seed,
		TotalCores: 20416,
		Days:       153,
		JobCount:   447794,
		MeanUtil:   0.36,
		UtilSigma:  0.006,
		Revert:     0.004,
		DiurnalAmp: 0.12,
		WeekendDip: 0.08,
		MaxJobFrac: 0.15,
	}
}

// MetacentrumConfig models the Czech Metacentrum log: 103,656 jobs over
// five months on a small 528-core system (~20% of capacity rarely used).
func MetacentrumConfig(seed int64) GenConfig {
	return GenConfig{
		Name:       "metacentrum",
		Seed:       seed,
		TotalCores: 528,
		Days:       150,
		JobCount:   103656,
		MeanUtil:   0.50,
		UtilSigma:  0.006,
		Revert:     0.004,
		DiurnalAmp: 0.12,
		WeekendDip: 0.08,
		MaxJobFrac: 0.25,
	}
}

// Presets returns the four cluster presets keyed by name.
func Presets(seed int64) map[string]GenConfig {
	return map[string]GenConfig{
		"gaia":        GaiaConfig(seed),
		"pik":         PIKConfig(seed),
		"ricc":        RICCConfig(seed),
		"metacentrum": MetacentrumConfig(seed),
	}
}
