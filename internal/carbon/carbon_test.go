package carbon

import (
	"math"
	"testing"

	"mpr/internal/trace"
)

func testTrace(t testing.TB) *trace.Trace {
	t.Helper()
	tr, err := trace.Generate(trace.GenConfig{
		Name: "carbon-test", Seed: 5, TotalCores: 128, Days: 5,
		JobCount: 600, MeanUtil: 0.65, MaxJobFrac: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSignalShape(t *testing.T) {
	s, err := NewSignal(7*24*60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Slots() != 7*24*60 {
		t.Errorf("slots = %d", s.Slots())
	}
	// Midday (13:00) must be cleaner than the evening peak (19:30).
	midday := s.IntensityAt(13 * 60)
	evening := s.IntensityAt(19*60 + 30)
	if midday >= evening {
		t.Errorf("midday %v should be cleaner than evening %v", midday, evening)
	}
	// All values above the clamp floor.
	for i := 0; i < s.Slots(); i += 17 {
		if v := s.IntensityAt(i); v < 50 {
			t.Fatalf("intensity %v below floor at slot %d", v, i)
		}
	}
	// Deterministic per seed.
	s2, _ := NewSignal(7*24*60, 1)
	for i := 0; i < s.Slots(); i += 101 {
		if s.IntensityAt(i) != s2.IntensityAt(i) {
			t.Fatal("signal not deterministic")
		}
	}
	// Mean within a sane band.
	if m := s.Mean(); m < 300 || m > 500 {
		t.Errorf("mean intensity = %v", m)
	}
}

func TestSignalValidation(t *testing.T) {
	if _, err := NewSignal(0, 1); err == nil {
		t.Error("zero slots accepted")
	}
}

func TestSignalBoundsHandling(t *testing.T) {
	s, _ := NewSignal(100, 2)
	if s.IntensityAt(-5) != s.IntensityAt(0) {
		t.Error("negative slot should clamp")
	}
	_ = s.IntensityAt(10_000) // beyond horizon: clamps to last noise
}

func TestDemandResponseSavesCarbon(t *testing.T) {
	res, err := Run(Config{Trace: testTrace(t), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.DREvents == 0 || res.DRSlots == 0 {
		t.Fatal("no demand-response events triggered")
	}
	if res.SavedKgCO2 <= 0 || res.EnergySavedKWh <= 0 {
		t.Errorf("no savings: %+v", res)
	}
	if res.SavedKgCO2 >= res.BaselineKgCO2 {
		t.Errorf("saved %v should be a fraction of baseline %v", res.SavedKgCO2, res.BaselineKgCO2)
	}
	// A meaningful but bounded share of emissions (reduction is capped
	// at 30% of dynamic power during dirty hours only).
	frac := res.SavedKgCO2 / res.BaselineKgCO2
	if frac < 0.005 || frac > 0.3 {
		t.Errorf("savings fraction %.3f outside plausible band", frac)
	}
}

func TestDemandResponseUsersProfit(t *testing.T) {
	res, err := Run(Config{Trace: testTrace(t), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.CostCoreH <= 0 {
		t.Fatal("no cost accrued")
	}
	if res.RewardPercent() <= 100 {
		t.Errorf("reward %.0f%% of cost, want > 100%% (cooperative bids never lose)", res.RewardPercent())
	}
}

func TestDemandResponseInteractive(t *testing.T) {
	stat, err := Run(Config{Trace: testTrace(t), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	intr, err := Run(Config{Trace: testTrace(t), Seed: 7, Interactive: true})
	if err != nil {
		t.Fatal(err)
	}
	if intr.SavedKgCO2 <= 0 {
		t.Fatal("interactive DR saved nothing")
	}
	// Same targets, similar savings.
	if ratio := intr.SavedKgCO2 / stat.SavedKgCO2; ratio < 0.7 || ratio > 1.4 {
		t.Errorf("interactive/static savings ratio %v", ratio)
	}
}

func TestDemandResponseThresholdControlsAggressiveness(t *testing.T) {
	tr := testTrace(t)
	low, err := Run(Config{Trace: tr, Seed: 7, ThresholdG: 380})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Run(Config{Trace: tr, Seed: 7, ThresholdG: 480})
	if err != nil {
		t.Fatal(err)
	}
	if low.DRSlots <= high.DRSlots {
		t.Errorf("lower threshold should trigger more DR: %d vs %d", low.DRSlots, high.DRSlots)
	}
	if low.SavedKgCO2 <= high.SavedKgCO2 {
		t.Errorf("lower threshold should save more: %v vs %v", low.SavedKgCO2, high.SavedKgCO2)
	}
}

func TestDemandResponseValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(Config{Trace: testTrace(t), MaxReductionFrac: 2}); err == nil {
		t.Error("excessive reduction fraction accepted")
	}
}

func TestDemandResponseDeterministic(t *testing.T) {
	tr := testTrace(t)
	a, err := Run(Config{Trace: tr, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Trace: tr, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.SavedKgCO2-b.SavedKgCO2) > 1e-9 || a.DREvents != b.DREvents {
		t.Error("demand response not deterministic")
	}
}
