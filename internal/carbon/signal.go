// Package carbon implements the paper's "beyond oversubscription"
// direction (Section I, merit ④): using MPR's user-in-the-loop market for
// socially responsible HPC management — "cutting carbon emissions by
// doing less work with 'dirty' power" and participating in grid demand
// response.
//
// The same supply-function market that buys resource reduction during a
// power emergency buys it during high-carbon-intensity hours: the manager
// watches a grid carbon-intensity signal, and when it exceeds a
// threshold, clears a market whose power-reduction target scales with how
// dirty the grid currently is. Users are paid in core-hours exactly as in
// overload handling.
package carbon

import (
	"fmt"
	"math"
	"math/rand"
)

// Signal is a synthetic grid carbon-intensity trace in gCO₂/kWh. The
// shape follows the typical solar-heavy grid profile: a midday dip when
// renewables peak, an evening ramp when they fall off, weekly modulation,
// and mean-reverting noise.
type Signal struct {
	// BaseG is the mean intensity (default 420 gCO₂/kWh).
	BaseG float64
	// SolarDipG is the midday reduction at full depth (default 150).
	SolarDipG float64
	// EveningRampG is the evening peak addition (default 90).
	EveningRampG float64
	// NoiseG is the per-slot noise sigma (default 12).
	NoiseG float64
	// Seed drives the noise.
	Seed int64

	noise []float64
}

// NewSignal precomputes a deterministic signal for the given number of
// one-minute slots.
func NewSignal(slots int, seed int64) (*Signal, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("carbon: slots must be positive, got %d", slots)
	}
	s := &Signal{BaseG: 420, SolarDipG: 150, EveningRampG: 90, NoiseG: 12, Seed: seed}
	rng := rand.New(rand.NewSource(seed))
	s.noise = make([]float64, slots)
	v := 0.0
	for i := range s.noise {
		// Mean-reverting noise so intensity excursions last tens of
		// minutes, like real grid mix swings.
		v += 0.05*(0-v) + s.NoiseG*0.3*rng.NormFloat64()
		s.noise[i] = v
	}
	return s, nil
}

// IntensityAt returns the carbon intensity at the given slot (gCO₂/kWh).
func (s *Signal) IntensityAt(slot int) float64 {
	if slot < 0 {
		slot = 0
	}
	hour := float64(slot%(24*60)) / 60
	day := (slot / (24 * 60)) % 7
	// Midday solar dip centered at 13:00, ~6 h wide.
	dip := s.SolarDipG * math.Exp(-((hour-13)*(hour-13))/(2*3*3))
	// Evening ramp centered at 19:30, ~2.5 h wide.
	ramp := s.EveningRampG * math.Exp(-((hour-19.5)*(hour-19.5))/(2*1.5*1.5))
	weekly := 1.0
	if day >= 5 {
		weekly = 0.93 // lighter demand, cleaner mix on weekends
	}
	v := (s.BaseG-dip+ramp)*weekly + s.noiseAt(slot)
	if v < 50 {
		v = 50
	}
	return v
}

func (s *Signal) noiseAt(slot int) float64 {
	if len(s.noise) == 0 {
		return 0
	}
	if slot >= len(s.noise) {
		slot = len(s.noise) - 1
	}
	return s.noise[slot]
}

// Slots reports the precomputed horizon.
func (s *Signal) Slots() int { return len(s.noise) }

// Mean returns the average intensity over the horizon.
func (s *Signal) Mean() float64 {
	if len(s.noise) == 0 {
		return 0
	}
	var sum float64
	for i := range s.noise {
		sum += s.IntensityAt(i)
	}
	return sum / float64(len(s.noise))
}
