package carbon

import (
	"fmt"
	"math"
	"math/rand"

	"mpr/internal/core"
	"mpr/internal/perf"
	"mpr/internal/power"
	"mpr/internal/trace"
)

// Config parameterizes a carbon-aware demand-response run.
type Config struct {
	// Trace is the workload to replay.
	Trace *trace.Trace
	// Profiles are assigned uniformly at random to jobs.
	Profiles []*perf.Profile
	// CoreModel is the per-core power model.
	CoreModel power.CoreModel
	// Seed drives profile assignment.
	Seed int64
	// ThresholdG is the carbon intensity (gCO₂/kWh) above which the
	// manager buys power reduction. Default: 1.05 × the signal mean.
	ThresholdG float64
	// MaxReductionFrac caps how much of the dynamic power the manager
	// buys back at the dirtiest hour (default 0.3).
	MaxReductionFrac float64
	// Interactive selects MPR-INT bidding instead of static cooperative
	// bids.
	Interactive bool
	// Signal is the grid carbon-intensity trace; one is generated from
	// Seed when nil.
	Signal *Signal
}

func (c *Config) normalize() error {
	if c.Trace == nil || len(c.Trace.Jobs) == 0 {
		return fmt.Errorf("carbon: config needs a non-empty trace")
	}
	if len(c.Profiles) == 0 {
		c.Profiles = perf.CPUProfiles()
	}
	if c.CoreModel == (power.CoreModel{}) {
		c.CoreModel = power.DefaultCPUCoreModel
	}
	if c.MaxReductionFrac == 0 {
		c.MaxReductionFrac = 0.3
	}
	if c.MaxReductionFrac < 0 || c.MaxReductionFrac > 1 {
		return fmt.Errorf("carbon: max reduction fraction must be in [0,1], got %v", c.MaxReductionFrac)
	}
	return nil
}

// Result summarizes a demand-response run.
type Result struct {
	Slots int
	// DREvents counts distinct high-carbon episodes handled.
	DREvents int
	// DRSlots counts slots with an active reduction.
	DRSlots int
	// BaselineKgCO2 is the workload's emissions without demand response;
	// SavedKgCO2 is the reduction achieved.
	BaselineKgCO2 float64
	SavedKgCO2    float64
	// EnergySavedKWh is the electricity not drawn.
	EnergySavedKWh float64
	// CostCoreH is the users' performance-loss cost and PaymentCoreH the
	// manager's incentive payoff, as in overload handling.
	CostCoreH    float64
	PaymentCoreH float64
	// MeanIntensity is the signal average over the run (gCO₂/kWh).
	MeanIntensity float64
	// ThresholdG echoes the trigger threshold used.
	ThresholdG float64
}

// RewardPercent mirrors the overload market's user-benefit metric.
func (r *Result) RewardPercent() float64 {
	if r.CostCoreH <= 0 {
		return 0
	}
	return 100 * r.PaymentCoreH / r.CostCoreH
}

type drJob struct {
	id           int
	cores        int
	profile      *perf.Profile
	model        *perf.CostModel
	staticBid    core.Bid
	remainingMin float64
	alloc        float64
}

// Run replays the trace against the carbon signal, clearing a reduction
// market whenever the grid is dirtier than the threshold. The reduction
// target scales linearly with how far the intensity exceeds the
// threshold, capped at MaxReductionFrac of the current dynamic power.
func Run(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Build jobs with profile assignments and static bids.
	jobs := make([]*drJob, 0, len(cfg.Trace.Jobs))
	arrivals := map[int][]*drJob{}
	lastSlot := 0
	for _, tj := range cfg.Trace.Jobs {
		prof := cfg.Profiles[rng.Intn(len(cfg.Profiles))]
		model := perf.NewCostModel(prof, 1, perf.CostLinear)
		j := &drJob{
			id:           tj.ID,
			cores:        tj.Cores,
			profile:      prof,
			model:        model,
			staticBid:    core.CooperativeBid(float64(tj.Cores), model),
			remainingMin: float64(tj.Runtime) / 60,
			alloc:        1,
		}
		slot := int(tj.Start() / 60)
		arrivals[slot] = append(arrivals[slot], j)
		if slot > lastSlot {
			lastSlot = slot
		}
		jobs = append(jobs, j)
	}
	horizon := lastSlot + 14*24*60

	sig := cfg.Signal
	if sig == nil {
		var err error
		sig, err = NewSignal(horizon+1, cfg.Seed)
		if err != nil {
			return nil, err
		}
	}
	threshold := cfg.ThresholdG
	if threshold == 0 {
		threshold = 1.05 * sig.Mean()
	}
	// The deepest excursion we scale against: intensity at the evening
	// peak minus the threshold.
	depth := sig.BaseG + sig.EveningRampG - threshold
	if depth <= 0 {
		depth = 1
	}

	res := &Result{ThresholdG: threshold, MeanIntensity: sig.Mean()}
	var active []*drJob
	inDR := false
	price := 0.0
	remaining := len(jobs)

	for slot := 0; slot <= horizon && (remaining > 0 || len(active) > 0); slot++ {
		keep := active[:0]
		for _, j := range active {
			if j.remainingMin <= 1e-9 {
				continue
			}
			keep = append(keep, j)
		}
		active = keep
		for _, j := range arrivals[slot] {
			active = append(active, j)
			remaining--
		}

		intensity := sig.IntensityAt(slot)
		var dynW float64
		for _, j := range active {
			dynW += float64(j.cores) * cfg.CoreModel.DynamicW
		}

		if intensity > threshold && dynW > 0 && len(active) > 0 {
			if !inDR {
				res.DREvents++
				inDR = true
			}
			frac := cfg.MaxReductionFrac * (intensity - threshold) / depth
			if frac > cfg.MaxReductionFrac {
				frac = cfg.MaxReductionFrac
			}
			targetW := frac * dynW
			parts := make([]*core.Participant, len(active))
			bidders := make([]core.Bidder, len(active))
			for i, j := range active {
				parts[i] = &core.Participant{
					JobID:        fmt.Sprint(j.id),
					Cores:        float64(j.cores),
					Bid:          j.staticBid,
					WattsPerCore: cfg.CoreModel.DynamicW,
					MaxFrac:      j.profile.MaxReduction(),
				}
				bidders[i] = &core.RationalBidder{Cores: float64(j.cores), Model: j.model}
			}
			var cres *core.ClearingResult
			var err error
			if cfg.Interactive {
				cres, err = core.ClearInteractive(parts, bidders, targetW, core.InteractiveConfig{})
			} else {
				cres, err = core.Clear(parts, targetW)
			}
			if err != nil {
				return nil, err
			}
			price = cres.Price
			for i, j := range active {
				x := cres.Reductions[i] / float64(j.cores)
				j.alloc = 1 - math.Min(x, j.profile.MaxReduction())
			}
			res.DRSlots++
		} else {
			if inDR {
				inDR = false
				price = 0
			}
			for _, j := range active {
				j.alloc = 1
			}
		}

		// Account emissions, savings, and market flows; progress work.
		for _, j := range active {
			fullW := cfg.CoreModel.JobPower(float64(j.cores), 1)
			actualW := cfg.CoreModel.JobPower(float64(j.cores), j.alloc)
			res.BaselineKgCO2 += fullW / 1000 * (1.0 / 60) * intensity / 1000
			savedW := fullW - actualW
			if savedW > 0 {
				res.EnergySavedKWh += savedW / 1000 / 60
				res.SavedKgCO2 += savedW / 1000 * (1.0 / 60) * intensity / 1000
				x := 1 - j.alloc
				res.CostCoreH += float64(j.cores) * j.model.Cost(x) / 60
				res.PaymentCoreH += price * x * float64(j.cores) / 60
			}
			j.remainingMin -= j.profile.Speed(j.alloc)
		}
		res.Slots = slot + 1
	}
	return res, nil
}
