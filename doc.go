// Package mpr is a from-scratch Go implementation of MPR — Market-based
// Power Reduction — the user-in-the-loop market mechanism for managing
// power-oversubscribed HPC systems proposed in "Market Mechanism-Based
// User-in-the-Loop Scalable Power Oversubscription for HPC Systems"
// (HPCA 2023).
//
// # The idea
//
// HPC systems are chronically power-underutilized, so operators can
// oversubscribe their power infrastructure — install more compute than
// the nominal capacity supports — and reclaim the headroom. The price is
// occasional overloads. MPR handles them reactively: when total power
// exceeds capacity, the HPC manager buys "resource reduction" from the
// users through a supply-function market. Each user submits a bid
// (Δ, b) parameterizing the supply function δ(q) = [Δ − b/q]⁺; the
// manager picks the minimal clearing price q′ whose aggregate supply
// covers the needed power cut, pays q′ per unit of reduction, and slows
// the winning jobs with DVFS. Users who value performance highly bid
// high and keep their speed; users who don't earn core-hour rewards that
// provably exceed their performance cost.
//
// # Package layout
//
// This root package is the public API: a curated facade over the
// internal implementation packages. The main entry points are:
//
//   - Market primitives: Bid, Participant, Clear (MPR-STAT),
//     ClearInteractive (MPR-INT), RationalBidder, CooperativeBid,
//     SolveOPT and SolveEQL (the paper's baselines), Settle.
//   - Application models: Profile, CostModel, CPUProfiles, GPUProfiles.
//   - Power substrate: CoreModel, Oversubscription, EmergencyController,
//     Infrastructure.
//   - Workloads: Trace, GenerateTrace, ParseSWF, trace presets for the
//     Gaia/PIK/RICC/Metacentrum clusters.
//   - Simulation: SimConfig, RunSim — the trace-driven evaluation
//     engine.
//   - Prototype: NewCluster — the emulated two-server prototype with
//     per-core DVFS.
//   - Distributed market: NewManager and DialAgent — the manager↔agent
//     TCP protocol for interactive bidding.
//   - Experiments: RunExperiment regenerates any of the paper's tables
//     and figures by ID.
//
// See the runnable programs under examples/ for end-to-end usage, and
// DESIGN.md / EXPERIMENTS.md for the reproduction methodology.
package mpr
