package mpr

import (
	"io"
	"net/http"

	"mpr/internal/agentproto"
	"mpr/internal/carbon"
	"mpr/internal/cluster"
	"mpr/internal/core"
	"mpr/internal/experiments"
	"mpr/internal/forecast"
	"mpr/internal/perf"
	"mpr/internal/power"
	"mpr/internal/sim"
	"mpr/internal/stats"
	"mpr/internal/tco"
	"mpr/internal/telemetry"
	"mpr/internal/trace"
)

// --- Market mechanism (the paper's core contribution) ------------------

// Bid is a user's supply-function parameterization δ(q) = [Δ − b/q]⁺.
type Bid = core.Bid

// Participant is one running job taking part in overload handling.
type Participant = core.Participant

// ClearingResult is the outcome of a market clearing.
type ClearingResult = core.ClearingResult

// AllocationResult is the outcome of a centralized baseline (OPT/EQL).
type AllocationResult = core.AllocationResult

// Bidder answers price announcements in the interactive market.
type Bidder = core.Bidder

// RationalBidder maximizes the user's net gain at each announced price —
// the MPR-INT strategy.
type RationalBidder = core.RationalBidder

// StaticBidder wraps a fixed bid for mixed static/interactive markets.
type StaticBidder = core.StaticBidder

// InteractiveConfig tunes the MPR-INT price-iteration loop.
type InteractiveConfig = core.InteractiveConfig

// Settlement records a participant's per-hour market outcome.
type Settlement = core.Settlement

// OPTMethod selects the OPT baseline solver.
type OPTMethod = core.OPTMethod

// OPT solver methods.
const (
	OPTGeneric = core.OPTGeneric
	OPTDual    = core.OPTDual
)

// ClearMode selects the MClr solver implementation.
type ClearMode = core.ClearMode

// MClr solver modes: the closed-form segmented solver (default), the
// legacy bisection search retained as a cross-check, and the streaming
// treap engine (same prices, solved incrementally).
const (
	ClearAuto       = core.ClearAuto
	ClearClosedForm = core.ClearClosedForm
	ClearBisection  = core.ClearBisection
	ClearStreaming  = core.ClearStreaming
)

// MarketIndex is the reusable MClr fast path: activation-sorted prefix
// sums giving O(log M) supply evaluation and exact per-segment clearing.
type MarketIndex = core.MarketIndex

// NewMarketIndex builds a reusable market index over the participants'
// current bids.
func NewMarketIndex(ps []*Participant) (*MarketIndex, error) {
	return core.NewMarketIndex(ps)
}

// StreamMarket is the continuously-clearing market core: an
// order-statistic treap over activation prices giving O(log M) bid
// updates with an immediate re-clear after each one, at zero steady-state
// allocations. Prices match the batch solvers to within float summation
// order.
type StreamMarket = core.StreamMarket

// ParticipantDelta is one streamed market mutation: a bid update, a new
// participant, or a removal.
type ParticipantDelta = core.ParticipantDelta

// ParticipantRangeError reports a participant index outside the market.
type ParticipantRangeError = core.ParticipantRangeError

// NewStreamMarket builds a continuously-clearing market over the
// participants' current bids.
func NewStreamMarket(ps []*Participant, targetW float64) (*StreamMarket, error) {
	return core.NewStreamMarket(ps, targetW)
}

// Clear runs the one-shot MPR-STAT market: minimal clearing price whose
// aggregate supply meets the power-reduction target.
func Clear(ps []*Participant, targetW float64) (*ClearingResult, error) {
	return core.Clear(ps, targetW)
}

// ClearWithMode is Clear with an explicit solver selection.
func ClearWithMode(ps []*Participant, targetW float64, mode ClearMode) (*ClearingResult, error) {
	return core.ClearWithMode(ps, targetW, mode)
}

// ClearCapped clears the market under a manager-side price ceiling (the
// Table I affordability bound).
func ClearCapped(ps []*Participant, targetW, priceCap float64) (*ClearingResult, error) {
	return core.ClearCapped(ps, targetW, priceCap)
}

// ClearCappedWithMode is ClearCapped with an explicit solver selection.
func ClearCappedWithMode(ps []*Participant, targetW, priceCap float64, mode ClearMode) (*ClearingResult, error) {
	return core.ClearCappedWithMode(ps, targetW, priceCap, mode)
}

// MarketStats reports the cumulative solver-call counters (full price
// searches, capped short-circuits) for observability in tests and ops.
//
// Deprecated: the counters now live in the default telemetry registry
// (see MetricsRegistry); read them there, or via InstrumentMarket with a
// private registry. This shim reads the default registry and will be
// removed once callers migrate.
func MarketStats() (priceSearches, cappedShortCircuits int64) {
	return core.MarketStats()
}

// InstrumentMarket points the market solvers' counters at reg; nil
// installs the no-op registry (the zero-overhead benchmark path). The
// default is the process-wide DefaultMetrics registry.
func InstrumentMarket(reg *MetricsRegistry) { core.Instrument(reg) }

// ClearInteractive runs the MPR-INT market loop to (Nash) convergence.
func ClearInteractive(ps []*Participant, bidders []Bidder, targetW float64, cfg InteractiveConfig) (*ClearingResult, error) {
	return core.ClearInteractive(ps, bidders, targetW, cfg)
}

// SolveOPT solves the centralized optimum (requires user cost functions).
func SolveOPT(ps []*Participant, targetW float64, m OPTMethod) (*AllocationResult, error) {
	return core.SolveOPT(ps, targetW, m)
}

// SolveEQL applies the performance-oblivious uniform slowdown baseline.
func SolveEQL(ps []*Participant, targetW float64) (*AllocationResult, error) {
	return core.SolveEQL(ps, targetW)
}

// SolvePriority applies priority-aware capping: the lowest tier is
// saturated before the next is touched (the hyperscale baseline of the
// paper's related work).
func SolvePriority(ps []*Participant, priorities []int, targetW float64) (*AllocationResult, error) {
	return core.SolvePriority(ps, priorities, targetW)
}

// Settle computes per-participant payments, costs, and net gains.
func Settle(ps []*Participant, reductions []float64, price float64) ([]Settlement, error) {
	return core.Settle(ps, reductions, price)
}

// VCGResult is the outcome of the VCG procurement auction baseline.
type VCGResult = core.VCGResult

// SolveVCG runs the VCG reduction auction (Section VI's alternative
// mechanism): exactly efficient and truthful, but it requires full cost
// revelation and M+1 optimal solves where MPR needs one bisection.
func SolveVCG(ps []*Participant, targetW float64) (*VCGResult, error) {
	return core.SolveVCG(ps, targetW)
}

// CooperativeBid devises the no-loss static bid of Section III-C.
func CooperativeBid(cores float64, model *CostModel) Bid {
	return core.CooperativeBid(cores, model)
}

// ConservativeBid adds reluctance margin on top of the cooperative bid.
func ConservativeBid(cores float64, model *CostModel, factor float64) Bid {
	return core.ConservativeBid(cores, model, factor)
}

// DeficientBid under-prices the cooperative bid (can lose money).
func DeficientBid(cores float64, model *CostModel, factor float64) Bid {
	return core.DeficientBid(cores, model, factor)
}

// --- Application performance and cost models ---------------------------

// Profile is an application's performance response to resource reduction.
type Profile = perf.Profile

// CostModel is a user's perceived cost of per-core resource reduction.
type CostModel = perf.CostModel

// CostShape selects linear or quadratic user cost.
type CostShape = perf.CostShape

// Cost shapes.
const (
	CostLinear    = perf.CostLinear
	CostQuadratic = perf.CostQuadratic
)

// NewCostModel builds a user cost model (α ≥ 1).
func NewCostModel(p *Profile, alpha float64, shape CostShape) *CostModel {
	return perf.NewCostModel(p, alpha, shape)
}

// CPUProfiles returns the paper's eight CPU application profiles.
func CPUProfiles() []*Profile { return perf.CPUProfiles() }

// GPUProfiles returns the paper's six GPU application profiles.
func GPUProfiles() []*Profile { return perf.GPUProfiles() }

// AllProfiles returns all fourteen application profiles.
func AllProfiles() []*Profile { return perf.AllProfiles() }

// ProfileByName looks a profile up by application name.
func ProfileByName(name string) (*Profile, error) { return perf.ProfileByName(name) }

// --- Power substrate ----------------------------------------------------

// CoreModel converts core allocation and speed into watts.
type CoreModel = power.CoreModel

// Oversubscription describes a capacity plan.
type Oversubscription = power.Oversubscription

// EmergencyController is the reactive overload-handling state machine.
type EmergencyController = power.EmergencyController

// EmergencyConfig parameterizes the controller.
type EmergencyConfig = power.EmergencyConfig

// Infrastructure is the hierarchical power-delivery tree of Fig. 1(a).
type Infrastructure = power.Infrastructure

// Default per-core power models.
var (
	DefaultCPUCoreModel = power.DefaultCPUCoreModel
	DefaultGPUCoreModel = power.DefaultGPUCoreModel
)

// NewEmergencyController builds the overload state machine.
func NewEmergencyController(cfg EmergencyConfig) (*EmergencyController, error) {
	return power.NewEmergencyController(cfg)
}

// NewUniformInfrastructure builds the paper's ATS→UPS→PDU→rack topology.
func NewUniformInfrastructure(upsCapacityW float64, pdus, racksPerPDU int) (*Infrastructure, error) {
	return power.NewUniformInfrastructure(upsCapacityW, pdus, racksPerPDU)
}

// --- Workload traces ----------------------------------------------------

// Trace is a batch workload.
type Trace = trace.Trace

// Job is one batch job.
type Job = trace.Job

// TraceConfig parameterizes the synthetic workload generator.
type TraceConfig = trace.GenConfig

// GenerateTrace produces a deterministic synthetic trace.
func GenerateTrace(cfg TraceConfig) (*Trace, error) { return trace.Generate(cfg) }

// ParseSWF reads a Standard Workload Format log.
func ParseSWF(r io.Reader, name string) (*Trace, error) { return trace.ParseSWF(r, name) }

// WriteSWF writes a trace in Standard Workload Format.
func WriteSWF(w io.Writer, t *Trace) error { return trace.WriteSWF(w, t) }

// TracePresets returns generator configs calibrated to the paper's four
// clusters: gaia, pik, ricc, metacentrum.
func TracePresets(seed int64) map[string]TraceConfig { return trace.Presets(seed) }

// UtilizationCDF returns the trace's utilization distribution (Fig. 1(b)).
func UtilizationCDF(t *Trace, slotSeconds int64) *CDF {
	return trace.UtilizationCDF(t, slotSeconds)
}

// CDF is an empirical cumulative distribution function.
type CDF = stats.CDF

// --- Simulation ---------------------------------------------------------

// SimConfig parameterizes a trace-driven simulation run.
type SimConfig = sim.Config

// SimResult carries a run's evaluation statistics.
type SimResult = sim.Result

// Algorithm selects the overload-handling strategy.
type Algorithm = sim.Algorithm

// The benchmark algorithms.
const (
	AlgOPT     = sim.AlgOPT
	AlgEQL     = sim.AlgEQL
	AlgMPRStat = sim.AlgMPRStat
	AlgMPRInt  = sim.AlgMPRInt
	AlgNone    = sim.AlgNone
)

// RunSim executes a simulation.
func RunSim(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// --- Prototype cluster emulation ----------------------------------------

// ClusterConfig parameterizes the emulated prototype.
type ClusterConfig = cluster.Config

// Cluster is the emulated two-server prototype with per-core DVFS.
type Cluster = cluster.Cluster

// AppSpec describes one prototype application.
type AppSpec = cluster.AppSpec

// NewCluster builds the emulated prototype.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// DefaultApps returns the paper's four prototype applications.
func DefaultApps() []AppSpec { return cluster.DefaultApps() }

// FreqSweep characterizes applications across the DVFS range (Fig. 16).
func FreqSweep(apps []AppSpec, points int) ([]cluster.FreqSweepPoint, error) {
	return cluster.FreqSweep(apps, points)
}

// --- Distributed market over TCP ----------------------------------------

// Manager is the market facilitator daemon.
type Manager = agentproto.Manager

// ManagerConfig tunes the manager's market loop.
type ManagerConfig = agentproto.ManagerConfig

// Agent is a connected autonomous bidding agent.
type Agent = agentproto.Agent

// AgentConfig describes the job an agent represents.
type AgentConfig = agentproto.AgentConfig

// NewManager starts a market manager listening on addr.
func NewManager(addr string, cfg ManagerConfig) (*Manager, error) {
	return agentproto.NewManager(addr, cfg)
}

// DialAgent connects a bidding agent to the manager.
func DialAgent(addr string, cfg AgentConfig) (*Agent, error) {
	return agentproto.Dial(addr, cfg)
}

// --- Power forecasting and carbon-aware demand response -------------------

// Forecaster predicts near-future power for early market invocation
// (Section III-D).
type Forecaster = forecast.Forecaster

// ForecastConfig tunes the Holt-Winters predictor.
type ForecastConfig = forecast.Config

// NewForecaster builds a power forecaster.
func NewForecaster(cfg ForecastConfig) (*Forecaster, error) { return forecast.New(cfg) }

// CarbonSignal is a synthetic grid carbon-intensity trace.
type CarbonSignal = carbon.Signal

// CarbonConfig parameterizes a carbon-aware demand-response run — the
// paper's "beyond oversubscription" direction (merit ④).
type CarbonConfig = carbon.Config

// CarbonResult summarizes emissions saved and market flows.
type CarbonResult = carbon.Result

// NewCarbonSignal precomputes a deterministic carbon-intensity trace.
func NewCarbonSignal(slots int, seed int64) (*CarbonSignal, error) {
	return carbon.NewSignal(slots, seed)
}

// RunCarbonDR replays a workload against a carbon signal, buying power
// reduction through the MPR market whenever the grid is dirty.
func RunCarbonDR(cfg CarbonConfig) (*CarbonResult, error) { return carbon.Run(cfg) }

// --- Total cost of ownership ----------------------------------------------

// TCOParams prices the data-center cost components.
type TCOParams = tco.Params

// TCOScenario describes a capacity plan to price.
type TCOScenario = tco.Scenario

// TCOBreakdown is a monthly cost decomposition.
type TCOBreakdown = tco.Breakdown

// EvaluateTCO prices a capacity plan (Section III-F's TCO discussion).
func EvaluateTCO(p TCOParams, s TCOScenario) (*TCOBreakdown, error) {
	return tco.Evaluate(p, s)
}

// --- Telemetry ------------------------------------------------------------

// MetricsRegistry is a stdlib-only metrics registry: atomic counters and
// gauges, lock-striped histograms, and labeled counter families. A nil
// *MetricsRegistry is the no-op registry — every method is safe and free.
type MetricsRegistry = telemetry.Registry

// MetricsSnapshot is a point-in-time copy of a registry's metrics.
type MetricsSnapshot = telemetry.Snapshot

// EventTracer is a ring-buffered structured event recorder for market
// clearing rounds and emergency transitions.
type EventTracer = telemetry.Tracer

// TraceEvent is one recorded telemetry event.
type TraceEvent = telemetry.Event

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// DefaultMetrics returns the process-wide registry the market solvers
// report into by default.
func DefaultMetrics() *MetricsRegistry { return telemetry.Default() }

// NewEventTracer builds a ring-buffered tracer holding the last capacity
// events (capacity <= 0 selects the default of 256).
func NewEventTracer(capacity int) *EventTracer { return telemetry.NewTracer(capacity) }

// MetricsHandler serves reg as Prometheus text at /metrics and a
// human-readable clearing-round view at /debug/market (tracer may be nil).
func MetricsHandler(reg *MetricsRegistry, tracer *EventTracer) http.Handler {
	return telemetry.Handler(reg, tracer)
}

// --- Experiment harness --------------------------------------------------

// ExperimentOptions tunes experiment scale.
type ExperimentOptions = experiments.Options

// ExperimentResult is one experiment's tables and notes.
type ExperimentResult = experiments.Result

// RunExperiment regenerates one of the paper's tables or figures by ID
// (t1, f1b, f2, f3, f4, f6..f17, a1..a4).
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentResult, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(opts)
}

// ExperimentIDs lists the available experiment IDs in paper order.
func ExperimentIDs() []string {
	var ids []string
	for _, e := range experiments.All() {
		ids = append(ids, e.ID)
	}
	return ids
}
