package mpr

// Benchmark harness: one benchmark per table and figure of the paper
// (plus the DESIGN.md ablations and micro-benchmarks of the market hot
// path). Each experiment benchmark regenerates its table/figure via the
// shared experiment harness in quick mode; run
//
//	go test -bench=. -benchmem
//
// for timings, and `go run ./cmd/mprbench -exp all` to print the actual
// rows/series (recorded in EXPERIMENTS.md). Set MPR_BENCH_PRINT=1 to also
// print each experiment's tables from the benchmark run.

import (
	"fmt"
	"os"
	"testing"
	"time"

	"mpr/internal/core"
	"mpr/internal/experiments"
	"mpr/internal/perf"
	"mpr/internal/telemetry"
)

var benchPrint = os.Getenv("MPR_BENCH_PRINT") == "1"

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.Options{Seed: 1, Quick: true}
	for i := 0; i < b.N; i++ {
		res, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if benchPrint && i == 0 {
			for _, tbl := range res.Tables {
				fmt.Println(tbl.String())
			}
		}
	}
}

// --- Paper tables and figures -------------------------------------------

func BenchmarkTable1_Oversubscription(b *testing.B)  { benchExperiment(b, "t1") }
func BenchmarkFig1b_UtilizationCDF(b *testing.B)     { benchExperiment(b, "f1b") }
func BenchmarkFig2_SupplyFunction(b *testing.B)      { benchExperiment(b, "f2") }
func BenchmarkFig3_XSBenchCost(b *testing.B)         { benchExperiment(b, "f3") }
func BenchmarkFig4_BiddingStrategies(b *testing.B)   { benchExperiment(b, "f4") }
func BenchmarkFig6_GaiaAllocation(b *testing.B)      { benchExperiment(b, "f6") }
func BenchmarkFig7_AppProfiles(b *testing.B)         { benchExperiment(b, "f7") }
func BenchmarkFig8_OversubImpact(b *testing.B)       { benchExperiment(b, "f8") }
func BenchmarkFig9_BenchmarkComparison(b *testing.B) { benchExperiment(b, "f9") }
func BenchmarkFig10_Scalability(b *testing.B)        { benchExperiment(b, "f10") }
func BenchmarkFig11_MarketPerformance(b *testing.B)  { benchExperiment(b, "f11") }
func BenchmarkFig12_Participation(b *testing.B)      { benchExperiment(b, "f12") }
func BenchmarkFig13_ModelError(b *testing.B)         { benchExperiment(b, "f13") }
func BenchmarkFig14_OtherTraces(b *testing.B)        { benchExperiment(b, "f14") }
func BenchmarkFig15_GPUCluster(b *testing.B)         { benchExperiment(b, "f15") }
func BenchmarkFig16_PrototypeDVFS(b *testing.B)      { benchExperiment(b, "f16") }
func BenchmarkFig17_PrototypeMPR(b *testing.B)       { benchExperiment(b, "f17") }

// --- Design ablations (DESIGN.md §4) -------------------------------------

func BenchmarkAblation_MClrSolvers(b *testing.B)   { benchExperiment(b, "a1") }
func BenchmarkAblation_CostShape(b *testing.B)     { benchExperiment(b, "a2") }
func BenchmarkAblation_BidStrategies(b *testing.B) { benchExperiment(b, "a3") }
func BenchmarkAblation_Hysteresis(b *testing.B)    { benchExperiment(b, "a4") }
func BenchmarkAblation_Predictive(b *testing.B)    { benchExperiment(b, "a5") }
func BenchmarkAblation_VCGAuction(b *testing.B)    { benchExperiment(b, "a6") }
func BenchmarkExtension_CarbonDR(b *testing.B)     { benchExperiment(b, "x1") }
func BenchmarkStudy_MarketCollusion(b *testing.B)  { benchExperiment(b, "x2") }
func BenchmarkStudy_PowerAttack(b *testing.B)      { benchExperiment(b, "x3") }
func BenchmarkStudy_Partitioned(b *testing.B)      { benchExperiment(b, "x4") }
func BenchmarkStudy_TCO(b *testing.B)              { benchExperiment(b, "x5") }
func BenchmarkStudy_PriorityCapping(b *testing.B)  { benchExperiment(b, "x6") }
func BenchmarkStudy_PowerPhases(b *testing.B)      { benchExperiment(b, "x7") }

// --- Sweep worker pool (DESIGN.md §9) ------------------------------------

// benchSweep regenerates the Fig. 8 Gaia run-matrix — the canonical sweep
// of oversubscription levels × algorithms — at the given worker-pool
// bound. Caches are reset every iteration so each run pays the full
// matrix cold, which is what the worker pool parallelizes; a warm run
// would just replay memoized cells and measure nothing.
func benchSweep(b *testing.B, workers int) {
	b.Helper()
	e, err := experiments.ByID("f8")
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.Options{Seed: 1, Quick: true, Days: 2, Parallel: workers}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.ResetCaches()
		if _, err := e.Run(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSerial vs BenchmarkSweepParallel is the headline number
// of the parallel sweep engine: same matrix, same tables (bit-identical,
// see TestSweepBitIdentity), worker pool bounded at 1 vs GOMAXPROCS. On
// a 4+-core machine the parallel variant should be several times faster;
// on a single-core runner the two are within noise by construction.
func BenchmarkSweepSerial(b *testing.B)   { benchSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 0) }

// --- Market hot-path micro-benchmarks ------------------------------------

func benchPool(b testing.TB, n int) ([]*core.Participant, []core.Bidder, float64) {
	b.Helper()
	profiles := perf.CPUProfiles()
	parts := make([]*core.Participant, n)
	bidders := make([]core.Bidder, n)
	var maxW float64
	for i := 0; i < n; i++ {
		prof := profiles[i%len(profiles)]
		model := perf.NewCostModel(prof, 1, perf.CostLinear)
		cores := float64(8)
		parts[i] = &core.Participant{
			JobID:        fmt.Sprintf("j%d", i),
			Cores:        cores,
			Bid:          core.CooperativeBid(cores, model),
			WattsPerCore: 125,
			MaxFrac:      prof.MaxReduction(),
			Cost:         func(d float64) float64 { return cores * model.Cost(d/cores) },
			MarginalCost: func(d float64) float64 { return model.Marginal(d / cores) },
		}
		bidders[i] = &core.RationalBidder{Cores: cores, Model: model}
	}
	for _, p := range parts {
		maxW += p.WattsPerCore * p.Bid.Delta
	}
	return parts, bidders, 0.4 * maxW
}

// benchClear measures the steady-state clear: the market index is built
// once and reused, as the sim engine and MPR-INT rounds do. Zero
// allocations per iteration.
func benchClear(b *testing.B, n int) {
	parts, _, target := benchPool(b, n)
	ix, err := core.NewMarketIndex(parts)
	if err != nil {
		b.Fatal(err)
	}
	var res core.ClearingResult
	if err := ix.ClearInto(&res, target); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ix.ClearInto(&res, target); err != nil {
			b.Fatal(err)
		}
	}
}

// benchClearMode measures the one-shot clear (validate + build + solve
// every call) under the given solver.
func benchClearMode(b *testing.B, n int, mode core.ClearMode) {
	parts, _, target := benchPool(b, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ClearWithMode(parts, target, mode); err != nil {
			b.Fatal(err)
		}
	}
}

// benchClearIntoSteady is benchClear with an explicit telemetry wiring:
// the no-op (nil) registry must keep the steady-state re-clear at zero
// allocations, and a live registry shows the instrumentation overhead.
func benchClearIntoSteady(b *testing.B, n int, reg *telemetry.Registry) {
	core.Instrument(reg)
	defer core.Instrument(telemetry.Default())
	benchClear(b, n)
}

// Steady-state ClearInto with telemetry disabled (the Nop registry) and
// enabled — the acceptance gate for the observability layer: the Nop
// variant must report 0 allocs/op and stay within noise of
// BenchmarkMarketClear1000.
func BenchmarkClearIntoSteady(b *testing.B) {
	benchClearIntoSteady(b, 1000, telemetry.Nop())
}
func BenchmarkClearIntoSteadyInstrumented(b *testing.B) {
	benchClearIntoSteady(b, 1000, telemetry.NewRegistry())
}

// TestClearIntoSteadyZeroAlloc is the CI-enforced form of the benchmark
// above: with the Nop registry installed, a steady-state re-clear must
// not allocate.
func TestClearIntoSteadyZeroAlloc(t *testing.T) {
	profiles := perf.CPUProfiles()
	parts := make([]*core.Participant, 256)
	var maxW float64
	for i := range parts {
		prof := profiles[i%len(profiles)]
		model := perf.NewCostModel(prof, 1, perf.CostLinear)
		parts[i] = &core.Participant{
			JobID:        fmt.Sprintf("j%d", i),
			Cores:        8,
			Bid:          core.CooperativeBid(8, model),
			WattsPerCore: 125,
			MaxFrac:      prof.MaxReduction(),
		}
		maxW += parts[i].WattsPerCore * parts[i].Bid.Delta
	}
	ix, err := core.NewMarketIndex(parts)
	if err != nil {
		t.Fatal(err)
	}
	core.Instrument(telemetry.Nop())
	defer core.Instrument(telemetry.Default())
	var res core.ClearingResult
	target := 0.4 * maxW
	allocs := testing.AllocsPerRun(200, func() {
		if err := ix.ClearInto(&res, target); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ClearInto with Nop registry allocates: %v allocs/op", allocs)
	}
}

// --- Streaming incremental clears (DESIGN.md §11) ------------------------

// benchStreamBids precomputes, for every participant, its build-time bid
// and an alternate with the activation price doubled. Toggling between
// the two moves the participant past roughly half the pool in activation
// order — the worst case for the batch index (every update forces a full
// re-sort) and the logarithmic case for the treap.
func benchStreamBids(parts []*core.Participant) (orig, alt []core.Bid) {
	orig = make([]core.Bid, len(parts))
	alt = make([]core.Bid, len(parts))
	for i, p := range parts {
		orig[i] = p.Bid
		alt[i] = core.Bid{Delta: p.Bid.Delta, B: 2 * p.Bid.B}
	}
	return orig, alt
}

// benchStreamApply measures one streamed bid update — treap delete +
// re-insert at the new activation price + full re-clear — on a market of
// n participants. Zero allocations per update.
func benchStreamApply(b *testing.B, n int) {
	parts, _, target := benchPool(b, n)
	sm, err := core.NewStreamMarket(parts, target)
	if err != nil {
		b.Fatal(err)
	}
	orig, alt := benchStreamBids(parts)
	core.Instrument(telemetry.Nop())
	defer core.Instrument(telemetry.Default())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % n
		bid := alt[j]
		if (i/n)%2 == 1 {
			bid = orig[j]
		}
		if _, _, err := sm.Apply(core.ParticipantDelta{Index: j, Bid: bid}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBatchUpdate is the pre-streaming cost of the same update: mutate
// one bid, re-sort the activation order, rebuild the prefix sums, and
// re-clear from scratch. The ratio against benchStreamApply is the
// headline number of the streaming engine (gated ≥100× at 100k below).
func benchBatchUpdate(b *testing.B, n int) {
	parts, _, target := benchPool(b, n)
	ix, err := core.NewMarketIndex(parts)
	if err != nil {
		b.Fatal(err)
	}
	orig, alt := benchStreamBids(parts)
	var res core.ClearingResult
	core.Instrument(telemetry.Nop())
	defer core.Instrument(telemetry.Default())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % n
		bid := alt[j]
		if (i/n)%2 == 1 {
			bid = orig[j]
		}
		if err := ix.SetBid(j, bid); err != nil {
			b.Fatal(err)
		}
		ix.Refresh()
		if err := ix.ClearInto(&res, target); err != nil {
			b.Fatal(err)
		}
	}
}

// Streamed update latency vs market size — O(log M), so the three sizes
// should be within a small constant of each other.
func BenchmarkStreamApply1000(b *testing.B)    { benchStreamApply(b, 1000) }
func BenchmarkStreamApply100000(b *testing.B)  { benchStreamApply(b, 100000) }
func BenchmarkStreamApply1000000(b *testing.B) { benchStreamApply(b, 1000000) }

// The batch counterpart at the gated size, for manual comparison runs.
func BenchmarkBatchUpdate100000(b *testing.B) { benchBatchUpdate(b, 100000) }

// TestStreamApplySpeedup is the CI-enforced acceptance gate of the
// streaming engine: on a 100k-participant market, a streamed
// activation-order-changing update must be at least 100× faster than the
// batch SetBid+Refresh+ClearInto path it replaces, and must not allocate.
// In practice the ratio is in the thousands (an O(log M) treap update vs
// an O(M log M) re-sort plus O(M) rebuild), so the 100× floor holds with
// a wide margin even on noisy shared runners. Both sides are timed over
// one shared pool rather than through testing.Benchmark, whose b.N ramp
// would rebuild the 100k pool several times and dominate the wall clock.
func TestStreamApplySpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-based gate; skipped in -short")
	}
	const n = 100000
	parts, _, target := benchPool(t, n)
	orig, alt := benchStreamBids(parts)
	pick := func(i int) core.Bid {
		if (i/n)%2 == 1 {
			return orig[i%n]
		}
		return alt[i%n]
	}
	core.Instrument(telemetry.Nop())
	defer core.Instrument(telemetry.Default())

	sm, err := core.NewStreamMarket(parts, target)
	if err != nil {
		t.Fatal(err)
	}
	step := 0
	apply := func() {
		if _, _, err := sm.Apply(core.ParticipantDelta{Index: step % n, Bid: pick(step)}); err != nil {
			t.Fatal(err)
		}
		step++
	}
	if allocs := testing.AllocsPerRun(100, apply); allocs != 0 {
		t.Errorf("streamed update allocates: %v allocs/op", allocs)
	}
	const streamOps = 50000
	startStream := time.Now()
	for i := 0; i < streamOps; i++ {
		apply()
	}
	streamNs := float64(time.Since(startStream).Nanoseconds()) / streamOps

	ix, err := core.NewMarketIndex(parts)
	if err != nil {
		t.Fatal(err)
	}
	var res core.ClearingResult
	const batchOps = 200
	startBatch := time.Now()
	for i := 0; i < batchOps; i++ {
		if err := ix.SetBid(i%n, pick(i)); err != nil {
			t.Fatal(err)
		}
		ix.Refresh()
		if err := ix.ClearInto(&res, target); err != nil {
			t.Fatal(err)
		}
	}
	batchNs := float64(time.Since(startBatch).Nanoseconds()) / batchOps

	ratio := batchNs / streamNs
	t.Logf("batch %.0f ns/update, stream %.0f ns/update: %.0f× speedup", batchNs, streamNs, ratio)
	if ratio < 100 {
		t.Fatalf("streamed update only %.1f× faster than batch (want ≥100×): batch %.0f ns, stream %.0f ns",
			ratio, batchNs, streamNs)
	}
}

// TestStreamApplySteadyZeroAlloc is the top-level twin of the core
// package's zero-alloc test, wired exactly like TestClearIntoSteadyZeroAlloc:
// with the Nop registry installed, a streamed update plus a re-clear into
// a reused result must not allocate.
func TestStreamApplySteadyZeroAlloc(t *testing.T) {
	profiles := perf.CPUProfiles()
	parts := make([]*core.Participant, 1024)
	var maxW float64
	for i := range parts {
		prof := profiles[i%len(profiles)]
		model := perf.NewCostModel(prof, 1, perf.CostLinear)
		parts[i] = &core.Participant{
			JobID:        fmt.Sprintf("j%d", i),
			Cores:        8,
			Bid:          core.CooperativeBid(8, model),
			WattsPerCore: 125,
			MaxFrac:      prof.MaxReduction(),
		}
		maxW += parts[i].WattsPerCore * parts[i].Bid.Delta
	}
	sm, err := core.NewStreamMarket(parts, 0.4*maxW)
	if err != nil {
		t.Fatal(err)
	}
	orig, alt := benchStreamBids(parts)
	core.Instrument(telemetry.Nop())
	defer core.Instrument(telemetry.Default())
	var res core.ClearingResult
	n := 0
	allocs := testing.AllocsPerRun(200, func() {
		j := n % len(parts)
		bid := alt[j]
		if (n/len(parts))%2 == 1 {
			bid = orig[j]
		}
		n++
		if _, _, err := sm.Apply(core.ParticipantDelta{Index: j, Bid: bid}); err != nil {
			t.Fatal(err)
		}
		if err := sm.ClearInto(&res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state streamed update with Nop registry allocates: %v allocs/op", allocs)
	}
}

// MPR-STAT clearing time vs pool size — the Fig. 10(a) hot path.
func BenchmarkMarketClear100(b *testing.B)   { benchClear(b, 100) }
func BenchmarkMarketClear1000(b *testing.B)  { benchClear(b, 1000) }
func BenchmarkMarketClear10000(b *testing.B) { benchClear(b, 10000) }
func BenchmarkMarketClear30000(b *testing.B) { benchClear(b, 30000) }

// One-shot closed-form clear (index rebuilt per call) and the legacy
// bisection solver, for the DESIGN.md solver comparison.
func BenchmarkMarketClearFresh30000(b *testing.B) {
	benchClearMode(b, 30000, core.ClearClosedForm)
}
func BenchmarkMarketClearBisect1000(b *testing.B) {
	benchClearMode(b, 1000, core.ClearBisection)
}
func BenchmarkMarketClearBisect30000(b *testing.B) {
	benchClearMode(b, 30000, core.ClearBisection)
}

func benchInteractive(b *testing.B, cfg core.InteractiveConfig) {
	parts, bidders, target := benchPool(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ClearInteractive(parts, bidders, target, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarketInteractive1000(b *testing.B) {
	benchInteractive(b, core.InteractiveConfig{})
}

// Sequential rebidding and the legacy per-round solver, for comparison
// against the parallel/indexed default above.
func BenchmarkMarketInteractive1000Seq(b *testing.B) {
	benchInteractive(b, core.InteractiveConfig{Workers: 1})
}
func BenchmarkMarketInteractive1000Bisect(b *testing.B) {
	benchInteractive(b, core.InteractiveConfig{Workers: 1, Mode: core.ClearBisection})
}

func BenchmarkOPTDual1000(b *testing.B) {
	parts, _, target := benchPool(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveOPT(parts, target, core.OPTDual); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOPTGeneric1000(b *testing.B) {
	parts, _, target := benchPool(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveOPT(parts, target, core.OPTGeneric); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEQL1000(b *testing.B) {
	parts, _, target := benchPool(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveEQL(parts, target); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSupplyFunction(b *testing.B) {
	bid := core.Bid{Delta: 0.7, B: 0.14}
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += bid.Supply(0.5)
	}
	_ = sink
}

func BenchmarkCooperativeBid(b *testing.B) {
	prof, err := perf.ProfileByName("XSBench")
	if err != nil {
		b.Fatal(err)
	}
	model := perf.NewCostModel(prof, 1, perf.CostLinear)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.CooperativeBid(16, model)
	}
}

func BenchmarkRationalBid(b *testing.B) {
	prof, err := perf.ProfileByName("XSBench")
	if err != nil {
		b.Fatal(err)
	}
	model := perf.NewCostModel(prof, 1, perf.CostLinear)
	rb := &core.RationalBidder{Cores: 16, Model: model}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.RespondBid(0.5)
	}
}
